#include "traditional/kdb_tree.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "common/logging.h"
#include "persist/io.h"

namespace elsi {
namespace {

double Coord(const Point& p, int axis) { return axis == 0 ? p.x : p.y; }

}  // namespace

KdbTree::KdbTree(size_t block_capacity) : block_capacity_(block_capacity) {
  ELSI_CHECK_GE(block_capacity, 2u);
}

namespace {

// Finds a split value on `axis` such that partitioning [begin, end) into
// (<= split) / (> split) leaves both sides non-empty. The median is tried
// first; when the median equals the range maximum (heavy duplication, e.g.
// TPC-H lattice values), the largest value strictly below it is used.
// Returns false when every point shares the same coordinate on this axis.
bool ChooseSplit(std::vector<Point>& pts, size_t begin, size_t end, int axis,
                 double* split, size_t* boundary) {
  const size_t mid = begin + (end - begin) / 2;
  std::nth_element(pts.begin() + begin, pts.begin() + mid, pts.begin() + end,
                   [axis](const Point& a, const Point& b) {
                     return Coord(a, axis) < Coord(b, axis);
                   });
  double v = Coord(pts[mid], axis);
  auto le = [axis](double value) {
    return [axis, value](const Point& p) { return Coord(p, axis) <= value; };
  };
  auto it = std::partition(pts.begin() + begin, pts.begin() + end, le(v));
  if (it == pts.begin() + end) {
    // v is the axis maximum; fall back to the largest value strictly < v.
    double below = -std::numeric_limits<double>::infinity();
    bool found = false;
    for (size_t i = begin; i < end; ++i) {
      const double c = Coord(pts[i], axis);
      if (c < v && c > below) {
        below = c;
        found = true;
      }
    }
    if (!found) return false;  // Axis fully duplicated.
    v = below;
    it = std::partition(pts.begin() + begin, pts.begin() + end, le(v));
  }
  *split = v;
  *boundary = static_cast<size_t>(it - pts.begin());
  return *boundary > begin && *boundary < end;
}

}  // namespace

std::unique_ptr<KdbTree::Node> KdbTree::BuildRecursive(std::vector<Point>& pts,
                                                       size_t begin,
                                                       size_t end, int depth) {
  auto node = std::make_unique<Node>();
  const size_t n = end - begin;
  if (n <= block_capacity_) {
    node->points.assign(pts.begin() + begin, pts.begin() + end);
    return node;
  }
  int axis = depth % 2;
  double split = 0.0;
  size_t boundary = begin;
  if (!ChooseSplit(pts, begin, end, axis, &split, &boundary)) {
    axis = 1 - axis;
    if (!ChooseSplit(pts, begin, end, axis, &split, &boundary)) {
      // Fully duplicated points: an oversized leaf is the only option.
      node->points.assign(pts.begin() + begin, pts.begin() + end);
      return node;
    }
  }
  node->axis = axis;
  node->split = split;
  node->left = BuildRecursive(pts, begin, boundary, depth + 1);
  node->right = BuildRecursive(pts, boundary, end, depth + 1);
  return node;
}

void KdbTree::Build(const std::vector<Point>& data) {
  size_ = data.size();
  std::vector<Point> pts = data;
  if (pts.empty()) {
    root_ = std::make_unique<Node>();
    return;
  }
  root_ = BuildRecursive(pts, 0, pts.size(), 0);
}

void KdbTree::SplitLeaf(Node* node, int depth) {
  std::vector<Point>& pts = node->points;
  int axis = depth % 2;
  double split = 0.0;
  size_t boundary = 0;
  if (!ChooseSplit(pts, 0, pts.size(), axis, &split, &boundary)) {
    axis = 1 - axis;
    if (!ChooseSplit(pts, 0, pts.size(), axis, &split, &boundary)) {
      return;  // Fully duplicated points; tolerate the oversized leaf.
    }
  }
  auto left = std::make_unique<Node>();
  auto right = std::make_unique<Node>();
  left->points.assign(pts.begin(), pts.begin() + boundary);
  right->points.assign(pts.begin() + boundary, pts.end());
  node->axis = axis;
  node->split = split;
  node->points.clear();
  node->points.shrink_to_fit();
  node->left = std::move(left);
  node->right = std::move(right);
}

void KdbTree::Insert(const Point& p) {
  if (root_ == nullptr) root_ = std::make_unique<Node>();
  Node* node = root_.get();
  int depth = 0;
  while (node->axis >= 0) {
    node = Coord(p, node->axis) <= node->split ? node->left.get()
                                               : node->right.get();
    ++depth;
  }
  node->points.push_back(p);
  ++size_;
  if (node->points.size() > block_capacity_) SplitLeaf(node, depth);
}

bool KdbTree::Remove(const Point& p) {
  if (root_ == nullptr) return false;
  Node* node = root_.get();
  while (node->axis >= 0) {
    node = Coord(p, node->axis) <= node->split ? node->left.get()
                                               : node->right.get();
  }
  for (size_t i = 0; i < node->points.size(); ++i) {
    if (node->points[i].id == p.id && node->points[i].x == p.x &&
        node->points[i].y == p.y) {
      node->points.erase(node->points.begin() + i);
      --size_;
      return true;
    }
  }
  return false;
}

bool KdbTree::PointQuery(const Point& q, Point* out) const {
  if (root_ == nullptr) return false;
  // Equal coordinates may sit on either side of an equal split; the build
  // keeps equals on the left, so the descent uses <=.
  const Node* node = root_.get();
  while (node->axis >= 0) {
    node = Coord(q, node->axis) <= node->split ? node->left.get()
                                               : node->right.get();
  }
  for (const Point& p : node->points) {
    if (p.x == q.x && p.y == q.y) {
      if (out != nullptr) *out = p;
      return true;
    }
  }
  return false;
}

std::vector<Point> KdbTree::WindowQuery(const Rect& w) const {
  std::vector<Point> result;
  if (root_ == nullptr) return result;
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    if (node->axis < 0) {
      for (const Point& p : node->points) {
        if (w.Contains(p)) result.push_back(p);
      }
      continue;
    }
    const double lo = node->axis == 0 ? w.lo_x : w.lo_y;
    const double hi = node->axis == 0 ? w.hi_x : w.hi_y;
    if (lo <= node->split) stack.push_back(node->left.get());
    if (hi > node->split) stack.push_back(node->right.get());
  }
  SortCanonical(&result);
  return result;
}

std::vector<Point> KdbTree::KnnQuery(const Point& q, size_t k) const {
  std::vector<Point> result;
  if (root_ == nullptr || size_ == 0 || k == 0) return result;

  struct Frontier {
    double dist;
    const Node* node;
    Rect region;
    bool operator>(const Frontier& other) const { return dist > other.dist; }
  };
  const double kInf = std::numeric_limits<double>::infinity();
  std::priority_queue<Frontier, std::vector<Frontier>, std::greater<>> open;
  open.push({0.0, root_.get(), Rect::Of(-kInf, -kInf, kInf, kInf)});

  using Candidate = std::pair<double, Point>;
  auto worse = [](const Candidate& a, const Candidate& b) {
    if (a.first != b.first) return a.first < b.first;
    return a.second.id < b.second.id;
  };
  std::priority_queue<Candidate, std::vector<Candidate>, decltype(worse)>
      best(worse);

  while (!open.empty()) {
    const Frontier f = open.top();
    open.pop();
    if (best.size() == k && f.dist > best.top().first) break;
    if (f.node->axis < 0) {
      for (const Point& p : f.node->points) {
        const double d = SquaredDistance(p, q);
        if (best.size() < k) {
          best.emplace(d, p);
        } else if (d < best.top().first ||
                   (d == best.top().first && p.id < best.top().second.id)) {
          best.pop();
          best.emplace(d, p);
        }
      }
      continue;
    }
    Rect left = f.region;
    Rect right = f.region;
    if (f.node->axis == 0) {
      left.hi_x = f.node->split;
      right.lo_x = f.node->split;
    } else {
      left.hi_y = f.node->split;
      right.lo_y = f.node->split;
    }
    open.push({left.MinSquaredDistance(q), f.node->left.get(), left});
    open.push({right.MinSquaredDistance(q), f.node->right.get(), right});
  }

  result.resize(best.size());
  for (size_t i = result.size(); i-- > 0;) {
    result[i] = best.top().second;
    best.pop();
  }
  return result;
}

int KdbTree::Height() const {
  if (root_ == nullptr) return 0;
  struct Item {
    const Node* node;
    int depth;
  };
  int height = 0;
  std::vector<Item> stack = {{root_.get(), 1}};
  while (!stack.empty()) {
    const Item item = stack.back();
    stack.pop_back();
    height = std::max(height, item.depth);
    if (item.node->axis >= 0) {
      stack.push_back({item.node->left.get(), item.depth + 1});
      stack.push_back({item.node->right.get(), item.depth + 1});
    }
  }
  return height;
}

void KdbTree::SaveNode(const Node& node, persist::Writer& w) const {
  w.I32(node.axis);
  if (node.axis >= 0) {
    w.F64(node.split);
    w.Bool(node.left != nullptr);
    if (node.left != nullptr) SaveNode(*node.left, w);
    w.Bool(node.right != nullptr);
    if (node.right != nullptr) SaveNode(*node.right, w);
    return;
  }
  persist::PutPoints(w, node.points);
}

std::unique_ptr<KdbTree::Node> KdbTree::LoadNode(persist::Reader& r,
                                                 int depth) const {
  // The split path alternates axes, so depth is bounded by a generous
  // constant rather than a structural invariant.
  if (depth > 512) {
    r.Fail();
    return nullptr;
  }
  auto node = std::make_unique<Node>();
  node->axis = r.I32();
  if (node->axis > 1) {
    r.Fail();
    return nullptr;
  }
  if (node->axis >= 0) {
    node->split = r.F64();
    if (r.Bool()) {
      node->left = LoadNode(r, depth + 1);
      if (node->left == nullptr) return nullptr;
    }
    if (r.Bool()) {
      node->right = LoadNode(r, depth + 1);
      if (node->right == nullptr) return nullptr;
    }
    return r.ok() ? std::move(node) : nullptr;
  }
  if (!persist::GetPoints(r, &node->points)) return nullptr;
  return std::move(node);
}

bool KdbTree::SaveState(persist::Writer& w) const {
  w.U64(block_capacity_);
  w.U64(size_);
  w.Bool(root_ != nullptr);
  if (root_ != nullptr) SaveNode(*root_, w);
  return true;
}

bool KdbTree::LoadState(persist::Reader& r) {
  block_capacity_ = r.U64();
  size_ = r.U64();
  if (block_capacity_ < 2) return r.Fail();
  const bool has_root = r.Bool();
  if (!r.ok()) return false;
  root_.reset();
  if (has_root) {
    root_ = LoadNode(r, 0);
    if (root_ == nullptr) return false;
  }
  return r.ok();
}

}  // namespace elsi
