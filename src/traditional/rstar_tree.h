#ifndef ELSI_TRADITIONAL_RSTAR_TREE_H_
#define ELSI_TRADITIONAL_RSTAR_TREE_H_

#include <memory>
#include <vector>

#include "common/spatial_index.h"
#include "storage/block_store.h"
#include "traditional/rtree_common.h"

namespace elsi {

/// The RR* competitor (Sec. VII-A): an R*-tree built by tuple insertion with
/// the R* heuristics — minimum-overlap subtree choice at the leaf level,
/// forced reinsertion of the 30% outermost entries on first overflow, and
/// axis/index split selection by perimeter and overlap. The 2009 "revised"
/// R*-tree refines these goal functions further; this implementation keeps
/// the classic R* machinery, which matches its query behaviour at the scale
/// exercised here (see DESIGN.md).
class RStarTree : public SpatialIndex {
 public:
  explicit RStarTree(size_t max_entries = kDefaultBlockCapacity);

  std::string Name() const override { return "RR*"; }
  void Build(const std::vector<Point>& data) override;
  void Insert(const Point& p) override;
  bool Remove(const Point& p) override;
  bool PointQuery(const Point& q, Point* out = nullptr) const override;
  std::vector<Point> WindowQuery(const Rect& w) const override;
  std::vector<Point> KnnQuery(const Point& q, size_t k) const override;
  size_t size() const override { return size_; }

  int Height() const { return RTreeHeight(root_.get()); }
  const RTreeNode* root() const { return root_.get(); }
  size_t max_entries() const { return max_entries_; }

  bool SaveState(persist::Writer& w) const override;
  bool LoadState(persist::Reader& r) override;

 private:
  // Inserts `p` at the leaf level; `reinsert_done` tracks whether forced
  // reinsertion already ran for the ongoing insertion. Returns the new
  // sibling when the visited node split.
  std::unique_ptr<RTreeNode> InsertRecursive(RTreeNode* node, const Point& p,
                                             bool* reinsert_done);
  std::unique_ptr<RTreeNode> SplitLeaf(RTreeNode* node);
  std::unique_ptr<RTreeNode> SplitInternal(RTreeNode* node);
  void ForcedReinsert(RTreeNode* leaf, bool* reinsert_done);
  RTreeNode* ChooseSubtree(RTreeNode* node, const Point& p) const;

  size_t max_entries_;
  size_t min_entries_;
  size_t size_ = 0;
  std::unique_ptr<RTreeNode> root_;
};

}  // namespace elsi

#endif  // ELSI_TRADITIONAL_RSTAR_TREE_H_
