#include "traditional/rstar_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "persist/io.h"

namespace elsi {
namespace {

// R* reinsertion fraction (Beckmann et al. recommend 30%).
constexpr double kReinsertFraction = 0.3;
// Overlap enlargement is evaluated only for this many best candidates by
// area enlargement, bounding ChooseSubtree at O(children * k).
constexpr size_t kOverlapCandidates = 8;

double Enlargement(const Rect& r, const Point& p) {
  Rect grown = r;
  grown.Extend(p);
  return grown.Area() - r.Area();
}

// Sum of pairwise overlap between `candidate` (grown by p) and the other
// children of `node`.
double OverlapEnlargement(const RTreeNode* node, const RTreeNode* candidate,
                          const Point& p) {
  Rect grown = candidate->mbr;
  grown.Extend(p);
  double before = 0.0;
  double after = 0.0;
  for (const auto& other : node->children) {
    if (other.get() == candidate) continue;
    before += candidate->mbr.IntersectionArea(other->mbr);
    after += grown.IntersectionArea(other->mbr);
  }
  return after - before;
}

// Generic R*-style split of `entries` (rectangles with payload indices):
// chooses the axis with the smallest margin sum over all legal
// distributions, then the distribution with the smallest overlap (ties by
// total area). Returns the boundary index into the sorted order and writes
// the sorted permutation to `order`.
struct SplitEntry {
  Rect mbr;
  size_t payload;
};

size_t ChooseSplitBoundary(std::vector<SplitEntry>& entries,
                           size_t min_entries) {
  const size_t n = entries.size();
  ELSI_CHECK_GE(n, 2 * min_entries);
  double best_margin = std::numeric_limits<double>::infinity();
  int best_axis = 0;
  for (int axis = 0; axis < 2; ++axis) {
    std::sort(entries.begin(), entries.end(),
              [axis](const SplitEntry& a, const SplitEntry& b) {
                const double la = axis == 0 ? a.mbr.lo_x : a.mbr.lo_y;
                const double lb = axis == 0 ? b.mbr.lo_x : b.mbr.lo_y;
                if (la != lb) return la < lb;
                const double ha = axis == 0 ? a.mbr.hi_x : a.mbr.hi_y;
                const double hb = axis == 0 ? b.mbr.hi_x : b.mbr.hi_y;
                return ha < hb;
              });
    // Prefix/suffix bounding boxes.
    std::vector<Rect> prefix(n), suffix(n);
    Rect acc;
    for (size_t i = 0; i < n; ++i) {
      acc.Extend(entries[i].mbr);
      prefix[i] = acc;
    }
    acc = Rect();
    for (size_t i = n; i-- > 0;) {
      acc.Extend(entries[i].mbr);
      suffix[i] = acc;
    }
    double margin = 0.0;
    for (size_t k = min_entries; k <= n - min_entries; ++k) {
      margin += prefix[k - 1].Perimeter() + suffix[k].Perimeter();
    }
    if (margin < best_margin) {
      best_margin = margin;
      best_axis = axis;
    }
  }
  // Re-sort on the chosen axis (the loop above leaves axis 1's order).
  std::sort(entries.begin(), entries.end(),
            [best_axis](const SplitEntry& a, const SplitEntry& b) {
              const double la = best_axis == 0 ? a.mbr.lo_x : a.mbr.lo_y;
              const double lb = best_axis == 0 ? b.mbr.lo_x : b.mbr.lo_y;
              if (la != lb) return la < lb;
              const double ha = best_axis == 0 ? a.mbr.hi_x : a.mbr.hi_y;
              const double hb = best_axis == 0 ? b.mbr.hi_x : b.mbr.hi_y;
              return ha < hb;
            });
  std::vector<Rect> prefix(n), suffix(n);
  Rect acc;
  for (size_t i = 0; i < n; ++i) {
    acc.Extend(entries[i].mbr);
    prefix[i] = acc;
  }
  acc = Rect();
  for (size_t i = n; i-- > 0;) {
    acc.Extend(entries[i].mbr);
    suffix[i] = acc;
  }
  double best_overlap = std::numeric_limits<double>::infinity();
  double best_area = std::numeric_limits<double>::infinity();
  size_t best_k = min_entries;
  for (size_t k = min_entries; k <= n - min_entries; ++k) {
    const double overlap = prefix[k - 1].IntersectionArea(suffix[k]);
    const double area = prefix[k - 1].Area() + suffix[k].Area();
    if (overlap < best_overlap ||
        (overlap == best_overlap && area < best_area)) {
      best_overlap = overlap;
      best_area = area;
      best_k = k;
    }
  }
  return best_k;
}

}  // namespace

RStarTree::RStarTree(size_t max_entries)
    : max_entries_(max_entries),
      min_entries_(std::max<size_t>(2, max_entries * 2 / 5)) {
  ELSI_CHECK_GE(max_entries, 4u);
  root_ = std::make_unique<RTreeNode>();
}

void RStarTree::Build(const std::vector<Point>& data) {
  root_ = std::make_unique<RTreeNode>();
  size_ = 0;
  for (const Point& p : data) Insert(p);
}

RTreeNode* RStarTree::ChooseSubtree(RTreeNode* node, const Point& p) const {
  // Children that are leaves: minimise overlap enlargement over the best few
  // area-enlargement candidates. Otherwise: minimise area enlargement.
  const bool child_is_leaf = node->children.front()->is_leaf;
  if (!child_is_leaf) {
    RTreeNode* best = nullptr;
    double best_enl = std::numeric_limits<double>::infinity();
    double best_area = std::numeric_limits<double>::infinity();
    for (const auto& c : node->children) {
      const double enl = Enlargement(c->mbr, p);
      const double area = c->mbr.Area();
      if (enl < best_enl || (enl == best_enl && area < best_area)) {
        best_enl = enl;
        best_area = area;
        best = c.get();
      }
    }
    return best;
  }
  // Rank children by area enlargement, examine the top few for overlap.
  std::vector<std::pair<double, RTreeNode*>> ranked;
  ranked.reserve(node->children.size());
  for (const auto& c : node->children) {
    ranked.emplace_back(Enlargement(c->mbr, p), c.get());
  }
  const size_t limit = std::min(kOverlapCandidates, ranked.size());
  std::partial_sort(ranked.begin(), ranked.begin() + limit, ranked.end(),
                    [](const auto& a, const auto& b) {
                      return a.first < b.first;
                    });
  RTreeNode* best = nullptr;
  double best_overlap = std::numeric_limits<double>::infinity();
  double best_enl = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < limit; ++i) {
    const double overlap = OverlapEnlargement(node, ranked[i].second, p);
    if (overlap < best_overlap ||
        (overlap == best_overlap && ranked[i].first < best_enl)) {
      best_overlap = overlap;
      best_enl = ranked[i].first;
      best = ranked[i].second;
    }
  }
  return best;
}

std::unique_ptr<RTreeNode> RStarTree::SplitLeaf(RTreeNode* node) {
  std::vector<SplitEntry> entries;
  entries.reserve(node->points.size());
  for (size_t i = 0; i < node->points.size(); ++i) {
    Rect r;
    r.Extend(node->points[i]);
    entries.push_back({r, i});
  }
  const size_t k = ChooseSplitBoundary(entries, min_entries_);
  auto sibling = std::make_unique<RTreeNode>();
  std::vector<Point> keep;
  keep.reserve(k);
  for (size_t i = 0; i < entries.size(); ++i) {
    const Point& p = node->points[entries[i].payload];
    if (i < k) {
      keep.push_back(p);
    } else {
      sibling->points.push_back(p);
    }
  }
  node->points = std::move(keep);
  node->RecomputeMbr();
  sibling->RecomputeMbr();
  return sibling;
}

std::unique_ptr<RTreeNode> RStarTree::SplitInternal(RTreeNode* node) {
  std::vector<SplitEntry> entries;
  entries.reserve(node->children.size());
  for (size_t i = 0; i < node->children.size(); ++i) {
    entries.push_back({node->children[i]->mbr, i});
  }
  const size_t k = ChooseSplitBoundary(entries, min_entries_);
  auto sibling = std::make_unique<RTreeNode>();
  sibling->is_leaf = false;
  std::vector<std::unique_ptr<RTreeNode>> keep;
  keep.reserve(k);
  for (size_t i = 0; i < entries.size(); ++i) {
    auto& child = node->children[entries[i].payload];
    if (i < k) {
      keep.push_back(std::move(child));
    } else {
      sibling->children.push_back(std::move(child));
    }
  }
  node->children = std::move(keep);
  node->RecomputeMbr();
  sibling->RecomputeMbr();
  return sibling;
}

void RStarTree::ForcedReinsert(RTreeNode* leaf, bool* reinsert_done) {
  *reinsert_done = true;
  const Point center = leaf->mbr.Center();
  std::sort(leaf->points.begin(), leaf->points.end(),
            [&center](const Point& a, const Point& b) {
              return SquaredDistance(a, center) > SquaredDistance(b, center);
            });
  const size_t remove_count = std::max<size_t>(
      1, static_cast<size_t>(kReinsertFraction * leaf->points.size()));
  std::vector<Point> evicted(leaf->points.begin(),
                             leaf->points.begin() + remove_count);
  leaf->points.erase(leaf->points.begin(),
                     leaf->points.begin() + remove_count);
  leaf->RecomputeMbr();
  // Close reinsert: nearest-first.
  std::reverse(evicted.begin(), evicted.end());
  for (const Point& p : evicted) {
    auto split = InsertRecursive(root_.get(), p, reinsert_done);
    if (split != nullptr) {
      auto new_root = std::make_unique<RTreeNode>();
      new_root->is_leaf = false;
      new_root->children.push_back(std::move(root_));
      new_root->children.push_back(std::move(split));
      new_root->RecomputeMbr();
      root_ = std::move(new_root);
    }
  }
}

std::unique_ptr<RTreeNode> RStarTree::InsertRecursive(RTreeNode* node,
                                                      const Point& p,
                                                      bool* reinsert_done) {
  node->mbr.Extend(p);
  if (node->is_leaf) {
    node->points.push_back(p);
    if (node->points.size() <= max_entries_) return nullptr;
    if (!*reinsert_done && node != root_.get()) {
      ForcedReinsert(node, reinsert_done);
      return nullptr;
    }
    return SplitLeaf(node);
  }
  RTreeNode* child = ChooseSubtree(node, p);
  auto split = InsertRecursive(child, p, reinsert_done);
  if (split != nullptr) {
    node->children.push_back(std::move(split));
    if (node->children.size() > max_entries_) {
      return SplitInternal(node);
    }
  }
  return nullptr;
}

void RStarTree::Insert(const Point& p) {
  bool reinsert_done = false;
  auto split = InsertRecursive(root_.get(), p, &reinsert_done);
  if (split != nullptr) {
    auto new_root = std::make_unique<RTreeNode>();
    new_root->is_leaf = false;
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(split));
    new_root->RecomputeMbr();
    root_ = std::move(new_root);
  }
  ++size_;
}

bool RStarTree::Remove(const Point& p) {
  if (!RTreeRemove(root_.get(), p)) return false;
  --size_;
  return true;
}

bool RStarTree::PointQuery(const Point& q, Point* out) const {
  return RTreePointQuery(root_.get(), q, out);
}

std::vector<Point> RStarTree::WindowQuery(const Rect& w) const {
  std::vector<Point> result;
  RTreeWindowQuery(root_.get(), w, &result);
  SortCanonical(&result);
  return result;
}

std::vector<Point> RStarTree::KnnQuery(const Point& q, size_t k) const {
  return RTreeKnnQuery(root_.get(), q, k);
}

bool RStarTree::SaveState(persist::Writer& w) const {
  w.U64(max_entries_);
  w.U64(size_);
  w.Bool(root_ != nullptr);
  if (root_ != nullptr) RTreeSaveNode(*root_, w);
  return true;
}

bool RStarTree::LoadState(persist::Reader& r) {
  max_entries_ = r.U64();
  size_ = r.U64();
  if (max_entries_ < 4) return r.Fail();
  min_entries_ = std::max<size_t>(2, max_entries_ * 2 / 5);
  const bool has_root = r.Bool();
  if (!r.ok()) return false;
  root_.reset();
  if (has_root) {
    root_ = RTreeLoadNode(r);
    if (root_ == nullptr) return false;
  } else {
    root_ = std::make_unique<RTreeNode>();
  }
  return r.ok();
}

}  // namespace elsi
