#include "traditional/grid_index.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "common/logging.h"
#include "persist/io.h"

namespace elsi {

GridIndex::GridIndex(size_t block_capacity) : block_capacity_(block_capacity) {
  ELSI_CHECK_GE(block_capacity, 2u);
}

int GridIndex::CellX(double x) const {
  const double w = domain_.hi_x - domain_.lo_x;
  if (w <= 0.0) return 0;
  const int c = static_cast<int>((x - domain_.lo_x) / w * side_);
  return std::clamp(c, 0, side_ - 1);
}

int GridIndex::CellY(double y) const {
  const double h = domain_.hi_y - domain_.lo_y;
  if (h <= 0.0) return 0;
  const int c = static_cast<int>((y - domain_.lo_y) / h * side_);
  return std::clamp(c, 0, side_ - 1);
}

Rect GridIndex::CellRect(int cx, int cy) const {
  const double w = (domain_.hi_x - domain_.lo_x) / side_;
  const double h = (domain_.hi_y - domain_.lo_y) / side_;
  return Rect::Of(domain_.lo_x + cx * w, domain_.lo_y + cy * h,
                  domain_.lo_x + (cx + 1) * w, domain_.lo_y + (cy + 1) * h);
}

void GridIndex::InsertIntoCell(Cell& cell, const Point& p) {
  // Choose the non-full block whose MBR grows least; create one if all full.
  Block* best = nullptr;
  double best_growth = std::numeric_limits<double>::infinity();
  for (Block& b : cell.blocks) {
    if (b.points.size() >= block_capacity_) continue;
    Rect grown = b.mbr;
    grown.Extend(p);
    const double growth = grown.Area() - b.mbr.Area();
    if (growth < best_growth) {
      best_growth = growth;
      best = &b;
    }
  }
  if (best == nullptr) {
    cell.blocks.emplace_back();
    best = &cell.blocks.back();
  }
  best->Add(p);
}

void GridIndex::Build(const std::vector<Point>& data) {
  size_ = data.size();
  domain_ = BoundingRect(data);
  if (data.empty()) {
    side_ = 1;
    cells_.assign(1, Cell{});
    return;
  }
  // sqrt(n/B) cells per side (Sec. VII-A), at least 1.
  side_ = std::max(1, static_cast<int>(std::sqrt(
                          static_cast<double>(data.size()) /
                          static_cast<double>(block_capacity_))));
  cells_.assign(static_cast<size_t>(side_) * side_, Cell{});
  for (const Point& p : data) {
    InsertIntoCell(CellAt(CellX(p.x), CellY(p.y)), p);
  }
}

void GridIndex::Insert(const Point& p) {
  if (cells_.empty()) {
    Build({p});
    return;
  }
  // The grid resolution is fixed at build time; out-of-domain points clamp
  // into the border cells.
  InsertIntoCell(CellAt(CellX(p.x), CellY(p.y)), p);
  ++size_;
}

bool GridIndex::Remove(const Point& p) {
  if (cells_.empty()) return false;
  Cell& cell = CellAt(CellX(p.x), CellY(p.y));
  for (Block& b : cell.blocks) {
    if (!b.mbr.Contains(p)) continue;
    for (size_t i = 0; i < b.points.size(); ++i) {
      if (b.points[i].id == p.id && b.points[i].x == p.x &&
          b.points[i].y == p.y) {
        b.points.erase(b.points.begin() + i);
        b.RecomputeMbr();
        --size_;
        return true;
      }
    }
  }
  return false;
}

bool GridIndex::PointQuery(const Point& q, Point* out) const {
  if (cells_.empty()) return false;
  const Cell& cell = CellAt(CellX(q.x), CellY(q.y));
  for (const Block& b : cell.blocks) {
    if (!b.mbr.Contains(q)) continue;
    for (const Point& p : b.points) {
      if (p.x == q.x && p.y == q.y) {
        if (out != nullptr) *out = p;
        return true;
      }
    }
  }
  return false;
}

std::vector<Point> GridIndex::WindowQuery(const Rect& w) const {
  std::vector<Point> result;
  if (cells_.empty()) return result;
  const int lx = CellX(std::max(w.lo_x, domain_.lo_x));
  const int hx = CellX(std::min(w.hi_x, domain_.hi_x));
  const int ly = CellY(std::max(w.lo_y, domain_.lo_y));
  const int hy = CellY(std::min(w.hi_y, domain_.hi_y));
  for (int cy = ly; cy <= hy; ++cy) {
    for (int cx = lx; cx <= hx; ++cx) {
      for (const Block& b : CellAt(cx, cy).blocks) {
        if (!b.mbr.Intersects(w)) continue;
        if (w.Contains(b.mbr)) {
          result.insert(result.end(), b.points.begin(), b.points.end());
        } else {
          for (const Point& p : b.points) {
            if (w.Contains(p)) result.push_back(p);
          }
        }
      }
    }
  }
  SortCanonical(&result);
  return result;
}

std::vector<Point> GridIndex::KnnQuery(const Point& q, size_t k) const {
  std::vector<Point> result;
  if (size_ == 0 || k == 0) return result;
  // Best-first over non-empty cells by min distance, pruned by the current
  // k-th candidate distance.
  using CellEntry = std::pair<double, int>;  // (min dist^2, cell index)
  std::priority_queue<CellEntry, std::vector<CellEntry>, std::greater<>>
      frontier;
  for (int cy = 0; cy < side_; ++cy) {
    for (int cx = 0; cx < side_; ++cx) {
      if (CellAt(cx, cy).blocks.empty()) continue;
      frontier.emplace(CellRect(cx, cy).MinSquaredDistance(q),
                       cy * side_ + cx);
    }
  }
  using Candidate = std::pair<double, Point>;
  auto worse = [](const Candidate& a, const Candidate& b) {
    if (a.first != b.first) return a.first < b.first;
    return a.second.id < b.second.id;
  };
  std::priority_queue<Candidate, std::vector<Candidate>, decltype(worse)>
      best(worse);
  while (!frontier.empty()) {
    const auto [dist, cell_idx] = frontier.top();
    frontier.pop();
    if (best.size() == k && dist > best.top().first) break;
    for (const Block& b : cells_[cell_idx].blocks) {
      if (best.size() == k && b.mbr.MinSquaredDistance(q) > best.top().first) {
        continue;
      }
      for (const Point& p : b.points) {
        const double d = SquaredDistance(p, q);
        if (best.size() < k) {
          best.emplace(d, p);
        } else if (d < best.top().first ||
                   (d == best.top().first && p.id < best.top().second.id)) {
          best.pop();
          best.emplace(d, p);
        }
      }
    }
  }
  result.resize(best.size());
  for (size_t i = result.size(); i-- > 0;) {
    result[i] = best.top().second;
    best.pop();
  }
  return result;
}

bool GridIndex::SaveState(persist::Writer& w) const {
  w.U64(block_capacity_);
  w.U64(size_);
  w.I32(side_);
  persist::PutRect(w, domain_);
  w.U64(cells_.size());
  for (const Cell& cell : cells_) {
    w.U32(static_cast<uint32_t>(cell.blocks.size()));
    for (const Block& b : cell.blocks) persist::PutPoints(w, b.points);
  }
  return true;
}

bool GridIndex::LoadState(persist::Reader& r) {
  block_capacity_ = r.U64();
  size_ = r.U64();
  side_ = r.I32();
  domain_ = persist::GetRect(r);
  const uint64_t ncells = r.U64();
  if (block_capacity_ < 2 || side_ <= 0 ||
      ncells != static_cast<uint64_t>(side_) * static_cast<uint64_t>(side_) ||
      ncells > r.remaining()) {
    return r.Fail();
  }
  cells_.assign(ncells, Cell{});
  uint64_t total = 0;
  for (Cell& cell : cells_) {
    const uint32_t nblocks = r.U32();
    if (nblocks > r.remaining() / 4) return r.Fail();
    cell.blocks.resize(nblocks);
    for (Block& b : cell.blocks) {
      if (!persist::GetPoints(r, &b.points)) return false;
      b.RecomputeMbr();
      total += b.points.size();
    }
  }
  if (total != size_) return r.Fail();
  return r.ok();
}

}  // namespace elsi
