#include "traditional/rtree_common.h"

#include <algorithm>
#include <queue>

#include "common/logging.h"
#include "persist/io.h"

namespace elsi {

void RTreeNode::RecomputeMbr() {
  mbr = Rect();
  if (is_leaf) {
    for (const Point& p : points) mbr.Extend(p);
  } else {
    for (const auto& c : children) mbr.Extend(c->mbr);
  }
}

void RTreeWindowQuery(const RTreeNode* node, const Rect& w,
                      std::vector<Point>* out) {
  if (node == nullptr || !node->mbr.Intersects(w)) return;
  if (node->is_leaf) {
    if (w.Contains(node->mbr)) {
      out->insert(out->end(), node->points.begin(), node->points.end());
      return;
    }
    for (const Point& p : node->points) {
      if (w.Contains(p)) out->push_back(p);
    }
    return;
  }
  for (const auto& c : node->children) {
    RTreeWindowQuery(c.get(), w, out);
  }
}

bool RTreePointQuery(const RTreeNode* node, const Point& q, Point* out) {
  if (node == nullptr || !node->mbr.Contains(q)) return false;
  if (node->is_leaf) {
    for (const Point& p : node->points) {
      if (p.x == q.x && p.y == q.y) {
        if (out != nullptr) *out = p;
        return true;
      }
    }
    return false;
  }
  for (const auto& c : node->children) {
    if (RTreePointQuery(c.get(), q, out)) return true;
  }
  return false;
}

std::vector<Point> RTreeKnnQuery(const RTreeNode* root, const Point& q,
                                 size_t k) {
  std::vector<Point> result;
  if (root == nullptr || k == 0) return result;

  using Frontier = std::pair<double, const RTreeNode*>;
  std::priority_queue<Frontier, std::vector<Frontier>, std::greater<>> open;
  open.emplace(root->mbr.MinSquaredDistance(q), root);

  using Candidate = std::pair<double, Point>;
  auto worse = [](const Candidate& a, const Candidate& b) {
    if (a.first != b.first) return a.first < b.first;
    return a.second.id < b.second.id;
  };
  std::priority_queue<Candidate, std::vector<Candidate>, decltype(worse)>
      best(worse);

  while (!open.empty()) {
    const auto [dist, node] = open.top();
    open.pop();
    if (best.size() == k && dist > best.top().first) break;
    if (node->is_leaf) {
      for (const Point& p : node->points) {
        const double d = SquaredDistance(p, q);
        if (best.size() < k) {
          best.emplace(d, p);
        } else if (d < best.top().first ||
                   (d == best.top().first && p.id < best.top().second.id)) {
          best.pop();
          best.emplace(d, p);
        }
      }
      continue;
    }
    for (const auto& c : node->children) {
      const double d = c->mbr.MinSquaredDistance(q);
      if (best.size() < k || d <= best.top().first) {
        open.emplace(d, c.get());
      }
    }
  }

  result.resize(best.size());
  for (size_t i = result.size(); i-- > 0;) {
    result[i] = best.top().second;
    best.pop();
  }
  return result;
}

bool RTreeRemove(RTreeNode* node, const Point& p) {
  if (node == nullptr || !node->mbr.Contains(p)) return false;
  if (node->is_leaf) {
    for (size_t i = 0; i < node->points.size(); ++i) {
      if (node->points[i].id == p.id && node->points[i].x == p.x &&
          node->points[i].y == p.y) {
        node->points.erase(node->points.begin() + i);
        node->RecomputeMbr();
        return true;
      }
    }
    return false;
  }
  for (auto& c : node->children) {
    if (RTreeRemove(c.get(), p)) {
      node->RecomputeMbr();
      return true;
    }
  }
  return false;
}

size_t RTreeCount(const RTreeNode* node) {
  if (node == nullptr) return 0;
  if (node->is_leaf) return node->points.size();
  size_t total = 0;
  for (const auto& c : node->children) total += RTreeCount(c.get());
  return total;
}

int RTreeHeight(const RTreeNode* node) {
  if (node == nullptr) return 0;
  if (node->is_leaf) return 1;
  int h = 0;
  for (const auto& c : node->children) h = std::max(h, RTreeHeight(c.get()));
  return h + 1;
}

bool RTreeCheckInvariants(const RTreeNode* node, size_t max_entries) {
  if (node == nullptr) return true;
  if (node->is_leaf) {
    if (node->points.size() > max_entries) return false;
    for (const Point& p : node->points) {
      if (!node->mbr.Contains(p)) return false;
    }
    return true;
  }
  if (node->children.empty() || node->children.size() > max_entries) {
    return false;
  }
  for (const auto& c : node->children) {
    if (!node->mbr.Contains(c->mbr)) return false;
    if (!RTreeCheckInvariants(c.get(), max_entries)) return false;
  }
  return true;
}

std::unique_ptr<RTreeNode> RTreePackLoad(const std::vector<Point>& points,
                                         size_t max_entries) {
  ELSI_CHECK_GE(max_entries, 2u);
  // Leaf level.
  std::vector<std::unique_ptr<RTreeNode>> level;
  for (size_t start = 0; start < points.size(); start += max_entries) {
    const size_t end = std::min(start + max_entries, points.size());
    auto leaf = std::make_unique<RTreeNode>();
    leaf->points.assign(points.begin() + start, points.begin() + end);
    leaf->RecomputeMbr();
    level.push_back(std::move(leaf));
  }
  if (level.empty()) {
    return std::make_unique<RTreeNode>();  // Empty leaf root.
  }
  // Upper levels: pack consecutive children until one node remains.
  while (level.size() > 1) {
    std::vector<std::unique_ptr<RTreeNode>> next;
    for (size_t start = 0; start < level.size(); start += max_entries) {
      const size_t end = std::min(start + max_entries, level.size());
      auto node = std::make_unique<RTreeNode>();
      node->is_leaf = false;
      for (size_t i = start; i < end; ++i) {
        node->children.push_back(std::move(level[i]));
      }
      node->RecomputeMbr();
      next.push_back(std::move(node));
    }
    level = std::move(next);
  }
  return std::move(level.front());
}

void RTreeSaveNode(const RTreeNode& node, persist::Writer& w) {
  w.Bool(node.is_leaf);
  if (node.is_leaf) {
    persist::PutPoints(w, node.points);
    return;
  }
  w.U32(static_cast<uint32_t>(node.children.size()));
  for (const auto& c : node.children) RTreeSaveNode(*c, w);
}

std::unique_ptr<RTreeNode> RTreeLoadNode(persist::Reader& r, int depth) {
  // R-tree heights are logarithmic in n; 64 levels is far beyond any real
  // tree and bounds recursion on corrupt input.
  if (depth > 64) {
    r.Fail();
    return nullptr;
  }
  auto node = std::make_unique<RTreeNode>();
  node->is_leaf = r.Bool();
  if (node->is_leaf) {
    if (!persist::GetPoints(r, &node->points)) return nullptr;
    node->RecomputeMbr();
    return std::move(node);
  }
  const uint32_t nchildren = r.U32();
  if (nchildren == 0 || nchildren > r.remaining()) {
    r.Fail();
    return nullptr;
  }
  node->children.reserve(nchildren);
  for (uint32_t i = 0; i < nchildren; ++i) {
    std::unique_ptr<RTreeNode> child = RTreeLoadNode(r, depth + 1);
    if (child == nullptr) return nullptr;
    node->children.push_back(std::move(child));
  }
  node->RecomputeMbr();
  return std::move(node);
}

}  // namespace elsi
