#include "traditional/hrr_tree.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/logging.h"
#include "curve/hilbert.h"
#include "persist/io.h"

namespace elsi {

HrrTree::HrrTree(size_t max_entries) : max_entries_(max_entries) {
  ELSI_CHECK_GE(max_entries, 4u);
  root_ = std::make_unique<RTreeNode>();
}

void HrrTree::Build(const std::vector<Point>& data) {
  size_ = data.size();
  if (data.empty()) {
    root_ = std::make_unique<RTreeNode>();
    return;
  }
  const size_t n = data.size();
  // Rank space: each coordinate replaced by its rank, then scaled onto a
  // 2^16 grid so the Hilbert order is resolution-independent.
  std::vector<size_t> by_x(n), by_y(n);
  std::iota(by_x.begin(), by_x.end(), 0);
  std::iota(by_y.begin(), by_y.end(), 0);
  std::sort(by_x.begin(), by_x.end(), [&data](size_t a, size_t b) {
    if (data[a].x != data[b].x) return data[a].x < data[b].x;
    return data[a].id < data[b].id;
  });
  std::sort(by_y.begin(), by_y.end(), [&data](size_t a, size_t b) {
    if (data[a].y != data[b].y) return data[a].y < data[b].y;
    return data[a].id < data[b].id;
  });
  std::vector<uint32_t> rank_x(n), rank_y(n);
  const double scale = n > 1 ? 65535.0 / static_cast<double>(n - 1) : 0.0;
  for (size_t r = 0; r < n; ++r) {
    rank_x[by_x[r]] = static_cast<uint32_t>(r * scale);
    rank_y[by_y[r]] = static_cast<uint32_t>(r * scale);
  }
  std::vector<std::pair<uint64_t, size_t>> order(n);
  for (size_t i = 0; i < n; ++i) {
    order[i] = {HilbertEncode(rank_x[i], rank_y[i], 16), i};
  }
  std::sort(order.begin(), order.end());
  std::vector<Point> sorted;
  sorted.reserve(n);
  for (const auto& [h, i] : order) sorted.push_back(data[i]);
  root_ = RTreePackLoad(sorted, max_entries_);
}

std::unique_ptr<RTreeNode> HrrTree::InsertSimple(RTreeNode* node,
                                                 const Point& p) {
  node->mbr.Extend(p);
  if (node->is_leaf) {
    node->points.push_back(p);
    if (node->points.size() <= max_entries_) return nullptr;
    // Middle split along the longer MBR axis.
    const int axis =
        (node->mbr.hi_x - node->mbr.lo_x) >= (node->mbr.hi_y - node->mbr.lo_y)
            ? 0
            : 1;
    std::sort(node->points.begin(), node->points.end(),
              [axis](const Point& a, const Point& b) {
                return axis == 0 ? a.x < b.x : a.y < b.y;
              });
    auto sibling = std::make_unique<RTreeNode>();
    const size_t half = node->points.size() / 2;
    sibling->points.assign(node->points.begin() + half, node->points.end());
    node->points.resize(half);
    node->RecomputeMbr();
    sibling->RecomputeMbr();
    return sibling;
  }
  // Least area enlargement, ties by area.
  RTreeNode* best = nullptr;
  double best_enl = std::numeric_limits<double>::infinity();
  double best_area = std::numeric_limits<double>::infinity();
  for (const auto& c : node->children) {
    Rect grown = c->mbr;
    grown.Extend(p);
    const double enl = grown.Area() - c->mbr.Area();
    const double area = c->mbr.Area();
    if (enl < best_enl || (enl == best_enl && area < best_area)) {
      best_enl = enl;
      best_area = area;
      best = c.get();
    }
  }
  auto split = InsertSimple(best, p);
  if (split != nullptr) {
    node->children.push_back(std::move(split));
    if (node->children.size() > max_entries_) {
      // Middle split of children ordered by MBR center on the longer axis.
      const int axis = (node->mbr.hi_x - node->mbr.lo_x) >=
                               (node->mbr.hi_y - node->mbr.lo_y)
                           ? 0
                           : 1;
      std::sort(node->children.begin(), node->children.end(),
                [axis](const auto& a, const auto& b) {
                  const Point ca = a->mbr.Center();
                  const Point cb = b->mbr.Center();
                  return axis == 0 ? ca.x < cb.x : ca.y < cb.y;
                });
      auto sibling = std::make_unique<RTreeNode>();
      sibling->is_leaf = false;
      const size_t half = node->children.size() / 2;
      for (size_t i = half; i < node->children.size(); ++i) {
        sibling->children.push_back(std::move(node->children[i]));
      }
      node->children.resize(half);
      node->RecomputeMbr();
      sibling->RecomputeMbr();
      return sibling;
    }
  }
  return nullptr;
}

void HrrTree::Insert(const Point& p) {
  auto split = InsertSimple(root_.get(), p);
  if (split != nullptr) {
    auto new_root = std::make_unique<RTreeNode>();
    new_root->is_leaf = false;
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(split));
    new_root->RecomputeMbr();
    root_ = std::move(new_root);
  }
  ++size_;
}

bool HrrTree::Remove(const Point& p) {
  if (!RTreeRemove(root_.get(), p)) return false;
  --size_;
  return true;
}

bool HrrTree::PointQuery(const Point& q, Point* out) const {
  return RTreePointQuery(root_.get(), q, out);
}

std::vector<Point> HrrTree::WindowQuery(const Rect& w) const {
  std::vector<Point> result;
  RTreeWindowQuery(root_.get(), w, &result);
  SortCanonical(&result);
  return result;
}

std::vector<Point> HrrTree::KnnQuery(const Point& q, size_t k) const {
  return RTreeKnnQuery(root_.get(), q, k);
}

bool HrrTree::SaveState(persist::Writer& w) const {
  w.U64(max_entries_);
  w.U64(size_);
  w.Bool(root_ != nullptr);
  if (root_ != nullptr) RTreeSaveNode(*root_, w);
  return true;
}

bool HrrTree::LoadState(persist::Reader& r) {
  max_entries_ = r.U64();
  size_ = r.U64();
  if (max_entries_ < 4) return r.Fail();
  const bool has_root = r.Bool();
  if (!r.ok()) return false;
  root_.reset();
  if (has_root) {
    root_ = RTreeLoadNode(r);
    if (root_ == nullptr) return false;
  } else {
    root_ = std::make_unique<RTreeNode>();
  }
  return r.ok();
}

}  // namespace elsi
