#ifndef ELSI_OBS_HTTP_EXPORTER_H_
#define ELSI_OBS_HTTP_EXPORTER_H_

/// Embedded HTTP exposition server for live introspection — plain POSIX
/// sockets and `poll`, no third-party dependencies. One background thread
/// accepts connections and answers GET requests:
///
///   /metrics        Prometheus text (plus exemplar comment lines linking
///                   histograms to flight-recorder trace ids)
///   /varz           JSON snapshot: uptime, build info, metrics,
///                   model health, flight-recorder summary
///   /healthz        liveness + degradation: uptime, git sha, obs/sanitizer
///                   build flags, WAL/snapshot lag, ring drops, per-index
///                   model drift status
///   /debug/trace    Chrome trace_event JSON of the span rings
///   /debug/queries  sampled query flight records (wide events)
///   /debug/profile  collapsed-stack CPU profile (?seconds=N&hz=H); always
///                   200 — explanatory "#" comment body when profiling is
///                   unavailable (compiled out or already running)
///
/// Responses are built from registry snapshots at request time; the server
/// never blocks recording paths. Connections are handled one at a time —
/// concurrent scrapes queue in the kernel backlog, which is plenty for
/// Prometheus-style polling.
///
/// With ELSI_OBS_ENABLED=0, Start() returns false and the server is a
/// stub; HttpGet (the matching client helper) stays available.

#include <cstdint>
#include <string>

#include "obs/metrics.h"

#if ELSI_OBS_ENABLED
#include <atomic>
#include <thread>
#endif

namespace elsi {
namespace obs {

/// Minimal blocking HTTP/1.1 GET client for tests and `elsi_cli top`.
/// Returns false on connect/read failure; on success fills `status` (e.g.
/// 200) and `body`.
bool HttpGet(const std::string& host, uint16_t port, const std::string& path,
             int* status, std::string* body);

#if ELSI_OBS_ENABLED

class HttpExporter {
 public:
  struct Options {
    std::string bind_address = "127.0.0.1";
    uint16_t port = 0;  // 0 = kernel-assigned (port() reports the result)
  };

  HttpExporter() = default;
  ~HttpExporter() { Stop(); }

  HttpExporter(const HttpExporter&) = delete;
  HttpExporter& operator=(const HttpExporter&) = delete;

  /// Binds, listens, and launches the serving thread. Returns false (with
  /// a message on stderr) if the socket cannot be bound.
  bool Start(const Options& options);

  /// Stops the serving thread and closes the socket. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The bound port (resolved after Start with port 0).
  uint16_t port() const { return port_; }

  /// Dispatches one request target (path plus optional "?query") to its
  /// handler — exposed so tests can check response bodies without a socket
  /// round-trip. Fills `status`, `content_type`, and `body`; unknown paths
  /// yield 404.
  static void Handle(const std::string& target, int* status,
                     std::string* content_type, std::string* body);

 private:
  void Serve();
  void HandleConnection(int fd);

  std::thread thread_;
  std::atomic<bool> running_{false};
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  uint16_t port_ = 0;
  uint64_t start_ns_ = 0;
};

#else  // !ELSI_OBS_ENABLED — inline no-op stub, same API.

class HttpExporter {
 public:
  struct Options {
    std::string bind_address = "127.0.0.1";
    uint16_t port = 0;
  };

  bool Start(const Options&) { return false; }
  void Stop() {}
  bool running() const { return false; }
  uint16_t port() const { return 0; }
  static void Handle(const std::string&, int* status,
                     std::string* content_type, std::string* body) {
    if (status != nullptr) *status = 404;
    if (content_type != nullptr) *content_type = "text/plain";
    if (body != nullptr) *body = "observability compiled out\n";
  }
};

#endif  // ELSI_OBS_ENABLED

}  // namespace obs
}  // namespace elsi

#endif  // ELSI_OBS_HTTP_EXPORTER_H_
