#include "obs/rolling.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

namespace elsi {
namespace obs {

namespace {

std::string RollingNumber(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

std::string WindowJson(const WindowView& view) {
  std::ostringstream out;
  out << "{\"requested_s\": " << RollingNumber(view.requested_s)
      << ", \"actual_s\": " << RollingNumber(view.actual_s)
      << ", \"histograms\": [";
  for (size_t i = 0; i < view.histograms.size(); ++i) {
    const WindowedHistogram& h = view.histograms[i];
    out << (i ? ", " : "") << "{\"name\": \"" << h.name
        << "\", \"count\": " << h.count
        << ", \"rate_per_s\": " << RollingNumber(h.rate_per_s)
        << ", \"p50\": " << RollingNumber(h.p50)
        << ", \"p99\": " << RollingNumber(h.p99) << "}";
  }
  out << "]}";
  return out.str();
}

}  // namespace

#if ELSI_OBS_ENABLED

RollingWindows& RollingWindows::Get() {
  // Leaked for the same static-destruction safety as the registries.
  static auto* windows = new RollingWindows();
  return *windows;
}

void RollingWindows::Tick(uint64_t now_ns) {
  if (now_ns == 0) now_ns = NowNs();
  // Snapshot outside the lock: the registry has its own synchronisation
  // and snapshots can be slow with many histograms.
  std::vector<HistogramSnapshot> histograms =
      MetricsRegistry::Get().Snapshot().histograms;
  std::lock_guard<std::mutex> lock(mutex_);
  if (!captures_.empty() && now_ns >= captures_.back().t_ns &&
      now_ns - captures_.back().t_ns < kMinGapNs) {
    return;
  }
  captures_.push_back({now_ns, std::move(histograms)});
  while (captures_.size() > kMaxCaptures) captures_.pop_front();
}

WindowView RollingWindows::Window(double seconds, uint64_t now_ns) const {
  if (now_ns == 0) now_ns = NowNs();
  WindowView view;
  view.requested_s = seconds;

  const uint64_t window_ns = static_cast<uint64_t>(seconds * 1e9);
  const Capture* base = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Newest capture at least `seconds` old; else the oldest available
    // (a shorter-than-requested window, reported via actual_s).
    for (const Capture& capture : captures_) {
      if (now_ns >= capture.t_ns && now_ns - capture.t_ns >= window_ns) {
        base = &capture;
      } else {
        break;  // captures are time-ordered
      }
    }
    if (base == nullptr && !captures_.empty() &&
        now_ns > captures_.front().t_ns) {
      base = &captures_.front();
    }
    if (base == nullptr) return view;

    view.actual_s = static_cast<double>(now_ns - base->t_ns) / 1e9;
    std::map<std::string, const HistogramSnapshot*> base_by_name;
    for (const HistogramSnapshot& h : base->histograms) {
      base_by_name[h.name] = &h;
    }
    for (const HistogramSnapshot& live :
         MetricsRegistry::Get().Snapshot().histograms) {
      HistogramSnapshot delta = live;
      const auto it = base_by_name.find(live.name);
      if (it != base_by_name.end() &&
          it->second->counts.size() == live.counts.size()) {
        const HistogramSnapshot& old = *it->second;
        delta.total = live.total >= old.total ? live.total - old.total : 0;
        delta.sum = live.sum - old.sum;
        for (size_t i = 0; i < delta.counts.size(); ++i) {
          delta.counts[i] =
              live.counts[i] >= old.counts[i] ? live.counts[i] - old.counts[i]
                                              : 0;
        }
      }
      if (delta.total == 0) continue;  // quiet histograms stay out
      WindowedHistogram windowed;
      windowed.name = live.name;
      windowed.count = delta.total;
      windowed.rate_per_s = static_cast<double>(delta.total) / view.actual_s;
      windowed.p50 = delta.ApproxQuantile(0.5);
      windowed.p99 = delta.ApproxQuantile(0.99);
      view.histograms.push_back(std::move(windowed));
    }
  }
  return view;
}

std::string RollingWindows::Json(uint64_t now_ns) {
  Tick(now_ns);
  std::ostringstream out;
  out << "{\"10s\": " << WindowJson(Window(10.0, now_ns))
      << ", \"60s\": " << WindowJson(Window(60.0, now_ns)) << "}";
  return out.str();
}

void RollingWindows::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  captures_.clear();
}

#else  // !ELSI_OBS_ENABLED

std::string RollingWindows::Json(uint64_t) {
  std::ostringstream out;
  out << "{\"10s\": " << WindowJson(Window(10.0))
      << ", \"60s\": " << WindowJson(Window(60.0)) << "}";
  return out.str();
}

#endif  // ELSI_OBS_ENABLED

}  // namespace obs
}  // namespace elsi
