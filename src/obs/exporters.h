#ifndef ELSI_OBS_EXPORTERS_H_
#define ELSI_OBS_EXPORTERS_H_

/// Serialisers for the obs layer: a JSON metrics snapshot, a
/// Prometheus-style text dump, and Chrome trace_event JSON for
/// chrome://tracing / Perfetto. All three work against the snapshot
/// structs, so they compile (and emit valid, empty documents) even with
/// ELSI_OBS_ENABLED=0.

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace elsi {
namespace obs {

/// {"counters": {...}, "gauges": {...}, "histograms": [...]}.
std::string MetricsJson(const MetricsSnapshot& snapshot);

/// Prometheus text exposition format. Metric names are sanitised
/// (dots -> underscores, `elsi_` prefix); a trailing `{label=value}` in the
/// registry name becomes a real Prometheus label; histograms expand to
/// `_bucket{le=...}` / `_sum` / `_count` series.
std::string MetricsPrometheus(const MetricsSnapshot& snapshot);

/// Chrome trace_event JSON, one tid per recorded thread, sorted by start
/// time: ph:"M" process/thread-name metadata, ph:"X" complete events
/// (ts/dur in microseconds, causal IDs under "args"), and ph:"s"/"f" flow
/// pairs drawing the fan-out arrow for every cross-thread parent→child
/// link so Perfetto renders the scatter-gather shape.
std::string TraceJson(const std::vector<ThreadTrace>& traces);

/// Convenience: snapshot the global registries and write to `path`.
/// Returns false (and logs) if the file cannot be written.
bool WriteMetricsJson(const std::string& path);
bool WriteMetricsPrometheus(const std::string& path);
bool WriteTraceJson(const std::string& path);

}  // namespace obs
}  // namespace elsi

#endif  // ELSI_OBS_EXPORTERS_H_
