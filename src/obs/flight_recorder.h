#ifndef ELSI_OBS_FLIGHT_RECORDER_H_
#define ELSI_OBS_FLIGHT_RECORDER_H_

/// Query flight recorder: a deterministic 1/N-sampled wide-event log of
/// individual queries. Each sampled query produces one structured record —
/// kind, index, latency, scan length, segments touched, model prediction
/// error, thread, trace id — written into a lock-free per-thread ring and
/// exposed over HTTP as /debug/queries (see http_exporter.h) and as
/// exemplar comments on /metrics.
///
/// Sampling is per-thread and counter-based (every Nth top-level query on
/// each thread), so a fixed workload partitioned deterministically across
/// threads samples a deterministic record count: Q serial queries yield
/// floor(Q / N) records, and the same Q split evenly over T threads yields
/// T * floor(Q / (T * N)) — equal whenever T * N divides Q.
///
/// Usage (already wired into the learned indices):
///
///   bool ZmIndex::PointQuery(...) const {
///     obs::QueryScope flight("ZM", obs::QueryKind::kPoint);
///     ...                       // deep layers call AddScan via Active()
///   }
///
/// Only the outermost scope on a thread samples (a kNN query's internal
/// window probes do not produce their own records). The non-sampled path
/// costs one thread-local increment and a compare; the record itself (two
/// clock reads and a ring write) is paid once per kSampleEvery queries.
///
/// With ELSI_OBS_ENABLED=0 everything below compiles to empty stubs.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"

#if ELSI_OBS_ENABLED
#include <array>
#include <atomic>
#include <memory>
#include <mutex>
#endif

namespace elsi {
namespace obs {

enum class QueryKind : uint8_t { kPoint = 0, kWindow = 1, kKnn = 2 };

inline const char* QueryKindName(QueryKind kind) {
  switch (kind) {
    case QueryKind::kPoint:
      return "point";
    case QueryKind::kWindow:
      return "window";
    case QueryKind::kKnn:
      return "knn";
  }
  return "unknown";
}

/// One sampled query. `index` points at static-storage characters (the
/// index's name literal), like TraceEvent::name.
struct QueryRecord {
  uint64_t trace_id = 0;  // (tid << 32) | per-thread sequence
  uint64_t start_ns = 0;  // NowNs timebase, shared with metrics/trace
  uint64_t latency_ns = 0;
  uint64_t scan_len = 0;    // positions scanned (prediction-error proxy)
  uint32_t segments = 0;    // segments/shards/leaves touched
  double pred_error = 0.0;  // |predicted - actual| positions, max over scans
  const char* index = nullptr;
  QueryKind kind = QueryKind::kPoint;
  uint32_t tid = 0;
};

/// Point-in-time copy of the recorder (the unit of export).
struct FlightSnapshot {
  uint64_t sample_every = 0;
  uint64_t dropped = 0;  // records overwritten by the rings
  std::vector<QueryRecord> records;  // sorted by start_ns
};

/// {"sample_every": N, "dropped": D, "records": [...]}.
std::string QueriesJson(const FlightSnapshot& snapshot);

#if ELSI_OBS_ENABLED

/// Fixed-capacity single-writer ring. Writers never block; readers copy
/// slots under a per-slot sequence lock (odd = being written) and simply
/// skip a slot that changes underneath them.
class FlightRing {
 public:
  static constexpr size_t kCapacity = 1024;

  explicit FlightRing(uint32_t tid) : tid_(tid) {}

  uint32_t tid() const { return tid_; }

  /// Single-producer: only the owning thread calls Push.
  void Push(const QueryRecord& record) {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    Slot& slot = slots_[head % kCapacity];
    slot.seq.store(2 * head + 1, std::memory_order_release);
    slot.record = record;
    slot.seq.store(2 * (head + 1), std::memory_order_release);
    head_.store(head + 1, std::memory_order_release);
  }

  /// Appends the surviving records; returns lifetime pushes (for dropped
  /// accounting).
  uint64_t Collect(std::vector<QueryRecord>* out) const;

  void Clear();

 private:
  struct Slot {
    std::atomic<uint64_t> seq{0};
    QueryRecord record;
  };

  const uint32_t tid_;
  std::atomic<uint64_t> head_{0};
  std::array<Slot, kCapacity> slots_;
};

/// Owner of every thread's ring, mirroring TraceRegistry: rings are created
/// on a thread's first sampled query and leak with the registry so exports
/// survive thread exit.
class FlightRecorder {
 public:
  static constexpr uint64_t kDefaultSampleEvery = 64;

  static FlightRecorder& Get();

  /// The calling thread's ring (created on first use).
  FlightRing& CurrentThreadRing();

  FlightSnapshot Snapshot() const;

  /// Drops recorded events from every ring (rings stay registered).
  void Clear();

  /// Sampling period N (every Nth top-level query per thread). Seeded from
  /// ELSI_FLIGHT_SAMPLE_EVERY on first use; 0 disables sampling entirely.
  uint64_t sample_every() const {
    return sample_every_.load(std::memory_order_relaxed);
  }
  void SetSampleEvery(uint64_t n) {
    sample_every_.store(n, std::memory_order_relaxed);
  }

 private:
  FlightRecorder();

  mutable std::mutex mutex_;
  std::vector<std::shared_ptr<FlightRing>> rings_;
  uint32_t next_tid_ = 1;
  std::atomic<uint64_t> sample_every_{kDefaultSampleEvery};
};

/// RAII sampling scope at a query entry point. The outermost scope on the
/// thread consults the sampler; when it fires, the scope stamps the start
/// time, collects scan statistics from deeper layers (AddScan), and records
/// the completed QueryRecord — and feeds the model-health monitor — on
/// destruction.
class QueryScope {
 public:
  QueryScope(const char* index, QueryKind kind);

  QueryScope(const QueryScope&) = delete;
  QueryScope& operator=(const QueryScope&) = delete;

  ~QueryScope();

  /// The innermost *sampled* scope of the calling thread, or null. Deep
  /// layers (segment search, shard scans) use this to attach per-scan
  /// statistics without plumbing a handle through every signature.
  static QueryScope* ActiveSampled() { return tls_active_; }

  /// One predict-and-scan episode: `scan` positions examined, prediction
  /// off by `error` positions. Accumulates scan/segment totals and keeps
  /// the worst error.
  void AddScan(uint64_t scan, double error) {
    record_.scan_len += scan;
    ++record_.segments;
    if (error > record_.pred_error) record_.pred_error = error;
  }

  bool sampled() const { return sampled_; }

 private:
  static thread_local QueryScope* tls_active_;
  static thread_local uint32_t tls_depth_;

  QueryRecord record_;
  bool sampled_ = false;
};

#else  // !ELSI_OBS_ENABLED — inline no-op stubs, same API.

class FlightRing {
 public:
  void Push(const QueryRecord&) {}
  uint64_t Collect(std::vector<QueryRecord>*) const { return 0; }
  void Clear() {}
  uint32_t tid() const { return 0; }
};

class FlightRecorder {
 public:
  static constexpr uint64_t kDefaultSampleEvery = 64;
  static FlightRecorder& Get() {
    static FlightRecorder recorder;
    return recorder;
  }
  FlightRing& CurrentThreadRing() { return ring_; }
  FlightSnapshot Snapshot() const { return {}; }
  void Clear() {}
  uint64_t sample_every() const { return 0; }
  void SetSampleEvery(uint64_t) {}

 private:
  FlightRing ring_;
};

class QueryScope {
 public:
  QueryScope(const char*, QueryKind) {}
  static QueryScope* ActiveSampled() { return nullptr; }
  void AddScan(uint64_t, double) {}
  bool sampled() const { return false; }
};

#endif  // ELSI_OBS_ENABLED

}  // namespace obs
}  // namespace elsi

#endif  // ELSI_OBS_FLIGHT_RECORDER_H_
