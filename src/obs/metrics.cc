#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#if ELSI_OBS_ENABLED
#include <chrono>
#endif

namespace elsi {
namespace obs {

HistogramSpec HistogramSpec::Exponential(double first, double factor,
                                         size_t count) {
  HistogramSpec spec;
  spec.bounds.reserve(count);
  double bound = first;
  for (size_t i = 0; i < count; ++i) {
    spec.bounds.push_back(bound);
    bound *= factor;
  }
  return spec;
}

HistogramSpec HistogramSpec::Linear(double start, double step, size_t count) {
  HistogramSpec spec;
  spec.bounds.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    spec.bounds.push_back(start + static_cast<double>(i) * step);
  }
  return spec;
}

double HistogramSnapshot::ApproxQuantile(double q) const {
  if (total == 0 || counts.empty()) return 0.0;
  // NaN slips through std::clamp (every comparison is false) and would make
  // the scan below fall through to the top bound; pin it to q=0 instead.
  if (std::isnan(q)) q = 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total);
  uint64_t cum = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    const uint64_t next = cum + counts[i];
    if (static_cast<double>(next) >= target && counts[i] > 0) {
      // Interpolate inside bucket i: [lo, hi] with lo the previous bound
      // (or 0) and hi this bound (+Inf bucket reports its lower edge).
      const double lo = i == 0 ? 0.0 : bounds[i - 1];
      if (i >= bounds.size()) return lo;
      const double hi = bounds[i];
      const double frac =
          (target - static_cast<double>(cum)) / static_cast<double>(counts[i]);
      return lo + std::clamp(frac, 0.0, 1.0) * (hi - lo);
    }
    cum = next;
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

#if ELSI_OBS_ENABLED

namespace {

/// Per-thread shard index: threads are striped over shards round-robin at
/// first use, so pool workers land on distinct cache lines.
size_t ThreadShard(size_t shard_count) {
  static std::atomic<size_t> next{0};
  thread_local const size_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id % shard_count;
}

void AtomicAddDouble(std::atomic<double>* target, double delta) {
  double current = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(current, current + delta,
                                        std::memory_order_relaxed)) {
  }
}

}  // namespace

uint64_t NowNs() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           epoch)
          .count());
}

Histogram::Histogram(const HistogramSpec& spec)
    : bounds_(spec.bounds), shards_(kShards) {
  for (Shard& shard : shards_) {
    shard.counts = std::vector<std::atomic<uint64_t>>(bounds_.size() + 1);
  }
}

void Histogram::Observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const size_t bucket = static_cast<size_t>(it - bounds_.begin());
  Shard& shard = shards_[ThreadShard(kShards)];
  shard.counts[bucket].fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(&shard.sum, value);
}

void Histogram::MergeCounts(const uint64_t* counts, size_t size,
                            double value_sum) {
  Shard& shard = shards_[ThreadShard(kShards)];
  const size_t n = std::min(size, shard.counts.size());
  for (size_t i = 0; i < n; ++i) {
    if (counts[i] != 0) {
      shard.counts[i].fetch_add(counts[i], std::memory_order_relaxed);
    }
  }
  AtomicAddDouble(&shard.sum, value_sum);
}

void Histogram::Clear() {
  for (Shard& shard : shards_) {
    for (auto& count : shard.counts) {
      count.store(0, std::memory_order_relaxed);
    }
    shard.sum.store(0.0, std::memory_order_relaxed);
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.counts.assign(bounds_.size() + 1, 0);
  for (const Shard& shard : shards_) {
    for (size_t i = 0; i < snap.counts.size(); ++i) {
      snap.counts[i] += shard.counts[i].load(std::memory_order_relaxed);
    }
    snap.sum += shard.sum.load(std::memory_order_relaxed);
  }
  for (const uint64_t c : snap.counts) snap.total += c;
  return snap;
}

MetricsRegistry& MetricsRegistry::Get() {
  // Leaked on exit so metrics recorded from static destructors (or atexit
  // exporters) never touch a destroyed registry.
  static auto* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name,
                                         const HistogramSpec& spec) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>(spec))
             .first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace_back(name, counter->Value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace_back(name, gauge->Value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot h = histogram->Snapshot();
    h.name = name;
    snap.histograms.push_back(std::move(h));
  }
  return snap;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) {
    counter->Add(0 - counter->Value());
  }
  for (auto& [name, gauge] : gauges_) gauge->Set(0);
  for (auto& [name, histogram] : histograms_) histogram->Clear();
}

#endif  // ELSI_OBS_ENABLED

}  // namespace obs
}  // namespace elsi
