#include "obs/http_exporter.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <utility>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "obs/exporters.h"
#include "obs/flight_recorder.h"
#include "obs/model_health.h"
#include "obs/rolling.h"
#include "obs/slow_query.h"
#include "obs/trace.h"
#include "prof/counters.h"
#include "prof/proc_stats.h"
#include "prof/sampler.h"
#include "prof/span_costs.h"
#include "simd/simd.h"

#ifndef ELSI_GIT_SHA
#define ELSI_GIT_SHA "unknown"
#endif
#ifndef ELSI_SANITIZE_NAME
#define ELSI_SANITIZE_NAME "none"
#endif

namespace elsi {
namespace obs {

namespace {

/// Reads from `fd` until `terminator` appears, EOF, `limit` bytes, or a
/// `timeout_ms` lull. Returns what was read.
std::string ReadUntil(int fd, const char* terminator, size_t limit,
                      int timeout_ms) {
  std::string data;
  char buf[2048];
  while (data.size() < limit && data.find(terminator) == std::string::npos) {
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready <= 0) break;
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    data.append(buf, static_cast<size_t>(n));
  }
  return data;
}

bool WriteAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n <= 0) return false;
    off += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

bool HttpGet(const std::string& host, uint16_t port, const std::string& path,
             int* status, std::string* body) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) return false;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return false;
  }
  const std::string request = "GET " + path +
                              " HTTP/1.1\r\nHost: " + host +
                              "\r\nConnection: close\r\n\r\n";
  if (!WriteAll(fd, request)) {
    ::close(fd);
    return false;
  }
  // Connection: close — EOF delimits the response.
  std::string response;
  char buf[4096];
  for (;;) {
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, 5000) <= 0) break;
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  if (response.compare(0, 5, "HTTP/") != 0) return false;
  const size_t space = response.find(' ');
  if (space == std::string::npos) return false;
  if (status != nullptr) {
    *status = std::atoi(response.c_str() + space + 1);
  }
  const size_t blank = response.find("\r\n\r\n");
  if (body != nullptr) {
    *body = blank == std::string::npos ? "" : response.substr(blank + 4);
  }
  return true;
}

#if ELSI_OBS_ENABLED

namespace {

std::string BuildInfoJson() {
  std::ostringstream out;
  out << "{\"git_sha\": \"" << ELSI_GIT_SHA << "\", \"obs_enabled\": "
      << ELSI_OBS_ENABLED << ", \"sanitizer\": \"" << ELSI_SANITIZE_NAME
      << "\", \"simd\": \"" << simd::ActiveLevelName() << "\"}";
  return out.str();
}

/// Strips the document-final newline so a serialiser's output embeds
/// cleanly as a JSON sub-object.
std::string Embed(std::string doc) {
  while (!doc.empty() && (doc.back() == '\n' || doc.back() == '\r')) {
    doc.pop_back();
  }
  return doc;
}

int64_t FindGauge(const MetricsSnapshot& snapshot, std::string_view name) {
  for (const auto& [gauge_name, value] : snapshot.gauges) {
    if (gauge_name == name) return value;
  }
  return 0;
}

uint64_t FindCounter(const MetricsSnapshot& snapshot, std::string_view name) {
  for (const auto& [counter_name, value] : snapshot.counters) {
    if (counter_name == name) return value;
  }
  return 0;
}

std::string FlightSummaryJson(const FlightSnapshot& flight) {
  std::ostringstream out;
  out << "{\"sample_every\": " << flight.sample_every
      << ", \"records\": " << flight.records.size()
      << ", \"dropped\": " << flight.dropped << "}";
  return out.str();
}

/// Refreshes the introspection gauges that are derived rather than
/// maintained on a hot path, so every exposition (or file export) sees
/// current values.
void RefreshDerivedGauges(const FlightSnapshot& flight) {
  GetGauge("flight.records").Set(static_cast<int64_t>(flight.records.size()));
  GetGauge("flight.dropped").Set(static_cast<int64_t>(flight.dropped));
  GetGauge("flight.sample_every")
      .Set(static_cast<int64_t>(flight.sample_every));
  // Dispatch level picked at startup (0 scalar, 1 neon, 2 avx2, 3 avx512);
  // constant per process but exported so fleet dashboards can confirm which
  // kernels a host is actually running.
  GetGauge("simd.dispatch").Set(static_cast<int64_t>(simd::ActiveLevel()));
  // Profiling layer: counter availability tier (0 unavailable / 1 software /
  // 2 hardware), sampler totals and span-attribution table size.
  GetGauge("prof.counters_mode")
      .Set(static_cast<int64_t>(prof::ProbeCounterMode()));
  const prof::ProfilerStats sampler = prof::CpuProfiler::Get().Stats();
  GetGauge("prof.sampler_running").Set(sampler.running ? 1 : 0);
  GetGauge("prof.samples").Set(static_cast<int64_t>(sampler.samples));
  GetGauge("prof.samples_dropped").Set(static_cast<int64_t>(sampler.dropped));
  GetGauge("prof.span_names")
      .Set(static_cast<int64_t>(prof::SpanCostRegistry::Get().Snapshot().size()));
  // Process resource telemetry (proc.* gauges), refreshed per scrape.
  prof::RefreshProcStats();
}

std::string ProfJson() {
  const prof::ProfilerStats sampler = prof::CpuProfiler::Get().Stats();
  prof::SpanCostRegistry& spans = prof::SpanCostRegistry::Get();
  std::ostringstream out;
  out << "{\"counters\": \"" << prof::CounterStatus()
      << "\", \"sampler\": {\"running\": " << (sampler.running ? "true" : "false")
      << ", \"samples\": " << sampler.samples
      << ", \"dropped\": " << sampler.dropped
      << ", \"threads_seen\": " << sampler.threads_seen
      << "}, \"span_attribution\": " << (spans.enabled() ? "true" : "false")
      << ", \"span_costs\": " << prof::SpanCostsJson(spans.Snapshot()) << "}";
  return out.str();
}

std::string ProcJson() {
  const prof::ProcStats s = prof::ReadProcStats();
  std::ostringstream out;
  out << "{\"available\": " << (s.available ? "true" : "false")
      << ", \"rss_bytes\": " << s.rss_bytes
      << ", \"vm_bytes\": " << s.vm_bytes
      << ", \"peak_rss_bytes\": " << s.peak_rss_bytes
      << ", \"minor_faults\": " << s.minor_faults
      << ", \"major_faults\": " << s.major_faults
      << ", \"voluntary_ctx_switches\": " << s.vol_ctx_switches
      << ", \"involuntary_ctx_switches\": " << s.invol_ctx_switches << "}";
  return out.str();
}

/// /debug/profile?seconds=N&hz=H — runs the sampling profiler inline for N
/// seconds (default 1, clamped to [0.1, 30]) and returns collapsed stacks.
/// Always 200: when profiling cannot run (compiled out, already running)
/// the body is an explanatory "# ..." comment instead, per the degradation
/// contract.
std::string ProfileBody(const std::string& query) {
  double seconds = 1.0;
  int hz = 99;
  size_t pos = 0;
  while (pos < query.size()) {
    size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const std::string param = query.substr(pos, amp - pos);
    if (param.compare(0, 8, "seconds=") == 0) {
      seconds = std::atof(param.c_str() + 8);
    } else if (param.compare(0, 3, "hz=") == 0) {
      hz = std::atoi(param.c_str() + 3);
    }
    pos = amp + 1;
  }
  if (!(seconds >= 0.1)) seconds = 0.1;  // also catches NaN
  if (seconds > 30.0) seconds = 30.0;
  if (hz < 1 || hz > 1000) hz = 99;

  prof::ProfilerOptions options;
  options.hz = hz;
  std::string error;
  const std::string collapsed =
      prof::ProfileForSeconds(seconds, options, &error);
  if (!error.empty()) {
    return "# profile unavailable: " + error + "\n";
  }
  if (collapsed.empty()) {
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "# no samples collected in %.1fs at %d Hz\n", seconds, hz);
    return buf;
  }
  return collapsed;
}

/// Classic Prometheus text has no exemplar syntax (that is OpenMetrics),
/// so exemplars ride as comment lines — parsers ignore them, humans and
/// tooling can still join histograms to flight records by trace id.
std::string ExemplarComments(const FlightSnapshot& flight) {
  const QueryRecord* latest[3] = {nullptr, nullptr, nullptr};
  for (const QueryRecord& r : flight.records) {
    const size_t k = static_cast<size_t>(r.kind);
    if (k < 3 && (latest[k] == nullptr || r.start_ns >= latest[k]->start_ns)) {
      latest[k] = &r;
    }
  }
  std::ostringstream out;
  for (const QueryRecord* r : latest) {
    if (r == nullptr) continue;
    char latency[32];
    std::snprintf(latency, sizeof(latency), "%.3f",
                  static_cast<double>(r->latency_ns) / 1000.0);
    out << "# exemplar elsi_query_flight_latency_us{kind=\""
        << QueryKindName(r->kind) << "\"} trace_id=" << r->trace_id
        << " latency_us=" << latency << " scan_len=" << r->scan_len
        << " index=" << (r->index != nullptr ? r->index : "") << "\n";
  }
  return out.str();
}

/// The /healthz "shard" block: population and balance of the sharded
/// scatter-gather engine (src/shard/). All zeros / empty when no
/// ShardedIndex runs in this process. Per-shard point counts come from the
/// shard.points.<i> gauges published by ShardedIndex::UpdateShardMetrics;
/// skew is the peak-to-mean population ratio, degraded counts shards whose
/// model-health monitor entry has tripped.
std::string ShardJson(const MetricsSnapshot& metrics) {
  constexpr std::string_view kPrefix = "shard.points.";
  std::vector<std::pair<size_t, int64_t>> points;
  for (const auto& [name, value] : metrics.gauges) {
    if (name.size() > kPrefix.size() &&
        name.compare(0, kPrefix.size(), kPrefix) == 0) {
      points.emplace_back(
          std::strtoull(name.c_str() + kPrefix.size(), nullptr, 10), value);
    }
  }
  std::sort(points.begin(), points.end());
  char skew[32];
  std::snprintf(
      skew, sizeof(skew), "%.3f",
      static_cast<double>(FindGauge(metrics, "shard.skew_permille")) / 1000.0);
  std::ostringstream out;
  out << "{\"count\": " << FindGauge(metrics, "shard.count")
      << ", \"points\": [";
  for (size_t i = 0; i < points.size(); ++i) {
    out << (i > 0 ? ", " : "") << points[i].second;
  }
  out << "], \"skew_ratio\": " << skew
      << ", \"degraded\": " << FindGauge(metrics, "shard.degraded") << "}";
  return out.str();
}

std::string HealthzJson() {
  const MetricsSnapshot metrics = MetricsRegistry::Get().Snapshot();
  const FlightSnapshot flight = FlightRecorder::Get().Snapshot();
  const std::vector<IndexHealth> health = ModelHealthMonitor::Get().Snapshot();
  bool degraded = false;
  for (const IndexHealth& h : health) degraded = degraded || h.degraded;
  char uptime[32];
  std::snprintf(uptime, sizeof(uptime), "%.3f",
                static_cast<double>(NowNs()) / 1e9);
  std::ostringstream out;
  out << "{\"status\": \"" << (degraded ? "degraded" : "ok")
      << "\", \"uptime_s\": " << uptime
      << ",\n \"build_info\": " << BuildInfoJson()
      << ",\n \"persist\": {\"snapshot_seq\": "
      << FindGauge(metrics, "persist.snapshot_seq")
      << ", \"wal_lag\": " << FindGauge(metrics, "persist.wal_lag") << "}"
      << ",\n \"concurrent\": {\"epoch\": " << FindGauge(metrics, "epoch.global")
      << ", \"limbo\": " << FindGauge(metrics, "epoch.limbo")
      << ", \"delta_depth\": "
      << FindGauge(metrics, "concurrent.delta_depth")
      << ", \"merges\": " << FindCounter(metrics, "concurrent.merges") << "}"
      << ",\n \"shard\": " << ShardJson(metrics)
      << ",\n \"trace\": {\"dropped\": "
      << FindCounter(metrics, "trace.dropped_total") << "}"
      << ",\n \"flight\": " << FlightSummaryJson(flight)
      << ",\n \"prof\": {\"counters\": \"" << prof::CounterStatus()
      << "\", \"sampler_samples\": "
      << prof::CpuProfiler::Get().Stats().samples << "}"
      << ",\n \"proc\": " << ProcJson()
      << ",\n \"model_health\": " << Embed(ModelHealthJson(health)) << "}\n";
  return out.str();
}

std::string VarzJson() {
  const FlightSnapshot flight = FlightRecorder::Get().Snapshot();
  RefreshDerivedGauges(flight);
  const MetricsSnapshot metrics = MetricsRegistry::Get().Snapshot();
  char uptime[32];
  std::snprintf(uptime, sizeof(uptime), "%.3f",
                static_cast<double>(NowNs()) / 1e9);
  std::ostringstream out;
  out << "{\"uptime_s\": " << uptime
      << ",\n \"build_info\": " << BuildInfoJson()
      << ",\n \"flight\": " << FlightSummaryJson(flight)
      << ",\n \"prof\": " << ProfJson()
      << ",\n \"proc\": " << ProcJson()
      << ",\n \"model_health\": "
      << Embed(ModelHealthJson(ModelHealthMonitor::Get().Snapshot()))
      // Scrape-driven rolling windows: current p50/p99 and rates over the
      // last ~10s/1m, not lifetime cumulatives. Ticks a capture per scrape.
      << ",\n \"windows\": " << RollingWindows::Get().Json()
      << ",\n \"metrics\": " << Embed(MetricsJson(metrics)) << "}\n";
  return out.str();
}

constexpr const char kIndexPage[] =
    "elsi introspection endpoints:\n"
    "  /metrics        Prometheus text exposition\n"
    "  /varz           JSON metrics snapshot\n"
    "  /healthz        liveness, build info, drift status\n"
    "  /debug/trace    Chrome trace_event JSON\n"
    "  /debug/slow     captured tail-latency trace trees\n"
    "  /debug/queries  sampled query flight records\n"
    "  /debug/profile  collapsed-stack CPU profile (?seconds=N&hz=H)\n";

}  // namespace

void HttpExporter::Handle(const std::string& target, int* status,
                          std::string* content_type, std::string* body) {
  // Split "?query" off here (not in HandleConnection) so parameterized
  // endpoints work through the socketless test entry point too.
  std::string path = target;
  std::string query;
  const size_t qpos = target.find('?');
  if (qpos != std::string::npos) {
    path = target.substr(0, qpos);
    query = target.substr(qpos + 1);
  }
  *status = 200;
  *content_type = "application/json";
  if (path == "/metrics") {
    const FlightSnapshot flight = FlightRecorder::Get().Snapshot();
    RefreshDerivedGauges(flight);
    *content_type = "text/plain; version=0.0.4";
    *body = MetricsPrometheus(MetricsRegistry::Get().Snapshot()) +
            ExemplarComments(flight);
  } else if (path == "/varz") {
    *body = VarzJson();
  } else if (path == "/healthz") {
    *body = HealthzJson();
  } else if (path == "/debug/trace") {
    *body = TraceJson(TraceRegistry::Get().Snapshot());
  } else if (path == "/debug/slow") {
    *body = SlowQueriesJson();
  } else if (path == "/debug/queries") {
    *body = QueriesJson(FlightRecorder::Get().Snapshot());
  } else if (path == "/debug/profile") {
    *content_type = "text/plain";
    *body = ProfileBody(query);
  } else if (path == "/" || path.empty()) {
    *content_type = "text/plain";
    *body = kIndexPage;
  } else {
    *status = 404;
    *content_type = "text/plain";
    *body = "not found\n";
  }
}

bool HttpExporter::Start(const Options& options) {
  if (running()) return false;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    std::perror("elsi::obs: socket");
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.port);
  if (::inet_pton(AF_INET, options.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    std::fprintf(stderr, "elsi::obs: bad bind address %s\n",
                 options.bind_address.c_str());
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, 64) != 0) {
    std::perror("elsi::obs: bind/listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);
  if (::pipe(wake_pipe_) != 0) {
    std::perror("elsi::obs: pipe");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  start_ns_ = NowNs();
  running_.store(true, std::memory_order_release);
  thread_ = std::thread(&HttpExporter::Serve, this);
  return true;
}

void HttpExporter::Stop() {
  if (!thread_.joinable()) return;
  const char byte = 'q';
  ssize_t ignored = ::write(wake_pipe_[1], &byte, 1);
  (void)ignored;
  thread_.join();
  running_.store(false, std::memory_order_release);
  ::close(listen_fd_);
  ::close(wake_pipe_[0]);
  ::close(wake_pipe_[1]);
  listen_fd_ = -1;
  wake_pipe_[0] = wake_pipe_[1] = -1;
}

void HttpExporter::Serve() {
  for (;;) {
    pollfd pfds[2] = {{listen_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    const int ready = ::poll(pfds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (pfds[1].revents != 0) break;  // Stop() woke us
    if ((pfds[0].revents & POLLIN) == 0) continue;
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    HandleConnection(conn);
    ::close(conn);
  }
}

void HttpExporter::HandleConnection(int fd) {
  const std::string request = ReadUntil(fd, "\r\n\r\n", 8192, 2000);
  std::istringstream line(request.substr(0, request.find("\r\n")));
  std::string method, target, version;
  line >> method >> target >> version;
  int status = 200;
  std::string content_type, body;
  if (method != "GET") {
    status = 405;
    content_type = "text/plain";
    body = "method not allowed\n";
  } else {
    Handle(target, &status, &content_type, &body);
  }
  const char* reason = status == 200   ? "OK"
                       : status == 404 ? "Not Found"
                       : status == 405 ? "Method Not Allowed"
                                       : "Error";
  std::ostringstream response;
  response << "HTTP/1.1 " << status << " " << reason << "\r\n"
           << "Content-Type: " << content_type << "\r\n"
           << "Content-Length: " << body.size() << "\r\n"
           << "Connection: close\r\n\r\n"
           << body;
  WriteAll(fd, response.str());
}

#endif  // ELSI_OBS_ENABLED

}  // namespace obs
}  // namespace elsi
