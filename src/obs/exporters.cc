#include "obs/exporters.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

namespace elsi {
namespace obs {

namespace {

/// JSON-escapes control characters, quotes, and backslashes.
std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Shortest round-trippable representation; JSON has no Inf/NaN, so those
/// degrade to a string the consumer can still recognise.
std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return v > 0 ? "\"+Inf\"" : "\"-Inf\"";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Splits "query.point.scan_len{method=sampling}" into the base name and
/// an optional "method=sampling" label body.
void SplitLabel(const std::string& name, std::string* base,
                std::string* label) {
  const size_t brace = name.find('{');
  if (brace == std::string::npos || name.back() != '}') {
    *base = name;
    label->clear();
    return;
  }
  *base = name.substr(0, brace);
  *label = name.substr(brace + 1, name.size() - brace - 2);
}

/// Prometheus metric names allow [a-zA-Z0-9_:]; dots become underscores.
std::string PromName(const std::string& base) {
  std::string out = "elsi_";
  out.reserve(out.size() + base.size());
  for (const char c : base) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

/// "method=sampling" -> `method="sampling"`; empty stays empty.
std::string PromLabelBody(const std::string& label) {
  if (label.empty()) return "";
  const size_t eq = label.find('=');
  if (eq == std::string::npos) return "";
  return label.substr(0, eq) + "=\"" + label.substr(eq + 1) + "\"";
}

/// Joins the fixed-label body with an extra label (for `le`).
std::string PromLabels(const std::string& body, const std::string& extra) {
  if (body.empty() && extra.empty()) return "";
  std::string joined = body;
  if (!joined.empty() && !extra.empty()) joined += ",";
  joined += extra;
  return "{" + joined + "}";
}

std::string PromNumber(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Atomic publish matching the persist conventions: write the full
/// document to `<path>.tmp`, then rename over the target, so a reader (or
/// a crash mid-write) never sees a truncated export.
bool WriteStringToFile(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "elsi::obs: cannot open %s for writing\n",
                   tmp.c_str());
      return false;
    }
    out << content;
    out.flush();
    if (!out) {
      std::fprintf(stderr, "elsi::obs: short write to %s\n", tmp.c_str());
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::fprintf(stderr, "elsi::obs: cannot rename %s over %s\n", tmp.c_str(),
                 path.c_str());
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace

std::string MetricsJson(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  for (size_t i = 0; i < snapshot.counters.size(); ++i) {
    out << (i ? ",\n    " : "\n    ") << '"'
        << JsonEscape(snapshot.counters[i].first)
        << "\": " << snapshot.counters[i].second;
  }
  out << (snapshot.counters.empty() ? "}" : "\n  }");
  out << ",\n  \"gauges\": {";
  for (size_t i = 0; i < snapshot.gauges.size(); ++i) {
    out << (i ? ",\n    " : "\n    ") << '"'
        << JsonEscape(snapshot.gauges[i].first)
        << "\": " << snapshot.gauges[i].second;
  }
  out << (snapshot.gauges.empty() ? "}" : "\n  }");
  out << ",\n  \"histograms\": [";
  for (size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const HistogramSnapshot& h = snapshot.histograms[i];
    out << (i ? ",\n    " : "\n    ");
    out << "{\"name\": \"" << JsonEscape(h.name) << "\", \"total\": "
        << h.total << ", \"sum\": " << JsonNumber(h.sum)
        << ", \"p50\": " << JsonNumber(h.ApproxQuantile(0.5))
        << ", \"p99\": " << JsonNumber(h.ApproxQuantile(0.99))
        << ", \"bounds\": [";
    for (size_t j = 0; j < h.bounds.size(); ++j) {
      out << (j ? ", " : "") << JsonNumber(h.bounds[j]);
    }
    out << "], \"counts\": [";
    for (size_t j = 0; j < h.counts.size(); ++j) {
      out << (j ? ", " : "") << h.counts[j];
    }
    out << "]}";
  }
  out << (snapshot.histograms.empty() ? "]" : "\n  ]");
  out << "\n}\n";
  return out.str();
}

std::string MetricsPrometheus(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  std::string base, label;
  // Labelled series of one family are adjacent (snapshots are sorted by
  // full name); the format wants exactly one # TYPE line per family.
  std::string last_family;
  const auto type_line = [&](const std::string& prom, const char* type) {
    if (prom == last_family) return;
    last_family = prom;
    out << "# TYPE " << prom << " " << type << "\n";
  };
  for (const auto& [name, value] : snapshot.counters) {
    SplitLabel(name, &base, &label);
    type_line(PromName(base), "counter");
    out << PromName(base) << PromLabels(PromLabelBody(label), "") << " "
        << value << "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    SplitLabel(name, &base, &label);
    type_line(PromName(base), "gauge");
    out << PromName(base) << PromLabels(PromLabelBody(label), "") << " "
        << value << "\n";
  }
  for (const HistogramSnapshot& h : snapshot.histograms) {
    SplitLabel(h.name, &base, &label);
    const std::string prom = PromName(base);
    const std::string body = PromLabelBody(label);
    type_line(prom, "histogram");
    uint64_t cum = 0;
    for (size_t i = 0; i < h.counts.size(); ++i) {
      cum += h.counts[i];
      const std::string le =
          i < h.bounds.size() ? PromNumber(h.bounds[i]) : "+Inf";
      out << prom << "_bucket" << PromLabels(body, "le=\"" + le + "\"") << " "
          << cum << "\n";
    }
    out << prom << "_sum" << PromLabels(body, "") << " " << PromNumber(h.sum)
        << "\n";
    out << prom << "_count" << PromLabels(body, "") << " " << h.total << "\n";
  }
  return out.str();
}

std::string TraceJson(const std::vector<ThreadTrace>& traces) {
  constexpr int kPid = 1;  // single process; named by the metadata below
  // Flatten + sort by start so the file is stable and streams of nested
  // spans render parent-before-child in viewers.
  struct Flat {
    uint64_t tid;
    TraceEvent event;
  };
  std::vector<Flat> flat;
  for (const ThreadTrace& trace : traces) {
    for (const TraceEvent& event : trace.events) {
      flat.push_back({trace.tid, event});
    }
  }
  std::stable_sort(flat.begin(), flat.end(), [](const Flat& a, const Flat& b) {
    if (a.event.start_ns != b.event.start_ns) {
      return a.event.start_ns < b.event.start_ns;
    }
    // Same start: longer (outer) span first so Perfetto nests correctly.
    return a.event.dur_ns > b.event.dur_ns;
  });

  std::ostringstream out;
  out << "{\"traceEvents\": [";
  size_t emitted = 0;
  const auto sep = [&]() -> std::ostream& {
    out << (emitted++ ? ",\n  " : "\n  ");
    return out;
  };

  // ph:"M" metadata names the process and every recorded thread, replacing
  // the bare pid/tid integers in viewer sidebars.
  if (!flat.empty()) {
    sep() << "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": " << kPid
          << ", \"args\": {\"name\": \"elsi\"}}";
    for (const ThreadTrace& trace : traces) {
      if (trace.events.empty()) continue;
      sep() << "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": " << kPid
            << ", \"tid\": " << trace.tid
            << ", \"args\": {\"name\": \"elsi-thread-" << trace.tid << "\"}}";
    }
  }

  // span_id -> flat index, for locating cross-thread parents.
  std::map<uint64_t, size_t> by_span_id;
  for (size_t i = 0; i < flat.size(); ++i) {
    if (flat[i].event.span_id != 0) by_span_id[flat[i].event.span_id] = i;
  }

  char ts[32], dur[32];
  for (const Flat& f : flat) {
    std::snprintf(ts, sizeof(ts), "%.3f",
                  static_cast<double>(f.event.start_ns) / 1000.0);
    std::snprintf(dur, sizeof(dur), "%.3f",
                  static_cast<double>(f.event.dur_ns) / 1000.0);
    sep() << "{\"name\": \""
          << JsonEscape(f.event.name != nullptr ? f.event.name : "")
          << "\", \"ph\": \"X\", \"ts\": " << ts << ", \"dur\": " << dur
          << ", \"pid\": " << kPid << ", \"tid\": " << f.tid;
    if (f.event.span_id != 0) {
      out << ", \"args\": {\"trace\": " << f.event.trace_id
          << ", \"span\": " << f.event.span_id
          << ", \"parent\": " << f.event.parent_id << "}";
    }
    out << "}";

    // Cross-thread parent: a ph:"s"/"f" flow pair draws the fan-out arrow
    // from the parent span to this one. Same-thread nesting needs no arrow
    // (the viewer stacks it), and a parent lost to ring wrap has no anchor.
    if (f.event.parent_id != 0) {
      const auto parent_it = by_span_id.find(f.event.parent_id);
      if (parent_it != by_span_id.end() &&
          flat[parent_it->second].tid != f.tid) {
        const Flat& p = flat[parent_it->second];
        char pts[32];
        std::snprintf(pts, sizeof(pts), "%.3f",
                      static_cast<double>(p.event.start_ns) / 1000.0);
        sep() << "{\"name\": \"fanout\", \"cat\": \"flow\", \"ph\": \"s\", "
                 "\"id\": "
              << f.event.span_id << ", \"ts\": " << pts
              << ", \"pid\": " << kPid << ", \"tid\": " << p.tid << "}";
        sep() << "{\"name\": \"fanout\", \"cat\": \"flow\", \"ph\": \"f\", "
                 "\"bp\": \"e\", \"id\": "
              << f.event.span_id << ", \"ts\": " << ts
              << ", \"pid\": " << kPid << ", \"tid\": " << f.tid << "}";
      }
    }
  }
  out << (emitted == 0 ? "]" : "\n]");
  out << ", \"displayTimeUnit\": \"ms\"}\n";
  return out.str();
}

bool WriteMetricsJson(const std::string& path) {
  return WriteStringToFile(path, MetricsJson(MetricsRegistry::Get().Snapshot()));
}

bool WriteMetricsPrometheus(const std::string& path) {
  return WriteStringToFile(
      path, MetricsPrometheus(MetricsRegistry::Get().Snapshot()));
}

bool WriteTraceJson(const std::string& path) {
  return WriteStringToFile(path, TraceJson(TraceRegistry::Get().Snapshot()));
}

}  // namespace obs
}  // namespace elsi
