#ifndef ELSI_OBS_ROLLING_H_
#define ELSI_OBS_ROLLING_H_

/// Time-windowed rolling views over the cumulative sharded histograms.
///
/// The registry's histograms are lifetime-cumulative: perfect for totals,
/// useless for "what is p99 *right now*". RollingWindows keeps a short
/// ring of timestamped histogram-snapshot captures (scrape-driven: the
/// /varz handler calls Tick(), so there is no background thread and zero
/// cost when nobody is looking) and answers windowed questions by
/// differencing the live counts against the capture closest to `now -
/// window`: the delta histogram yields windowed p50/p99 via
/// ApproxQuantile, and delta-total / elapsed yields the rate (QPS for
/// query histograms). The JSON reports the *actual* span of each window —
/// after a fresh start a "60s" window may only cover 12s of history.
///
/// All entry points take an explicit now_ns (0 = NowNs()) so tests can
/// drive time deterministically. With ELSI_OBS_ENABLED=0 the class stubs
/// out and Json() returns an empty-windows document.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"

#if ELSI_OBS_ENABLED
#include <deque>
#include <mutex>
#endif

namespace elsi {
namespace obs {

/// One histogram's activity inside a window.
struct WindowedHistogram {
  std::string name;
  uint64_t count = 0;    // observations inside the window
  double rate_per_s = 0; // count / actual window span
  double p50 = 0;
  double p99 = 0;
};

/// One evaluated window: requested length, actual covered span, and every
/// histogram that saw activity inside it.
struct WindowView {
  double requested_s = 0;
  double actual_s = 0;  // 0 when there is not enough history yet
  std::vector<WindowedHistogram> histograms;
};

#if ELSI_OBS_ENABLED

class RollingWindows {
 public:
  static constexpr size_t kMaxCaptures = 128;
  /// Minimum gap between stored captures: bounds ring memory while keeping
  /// a 10s window accurate to ~±1s under 1/s scraping.
  static constexpr uint64_t kMinGapNs = 1'000'000'000ULL;

  static RollingWindows& Get();

  /// Stores a capture of the live histograms if kMinGapNs elapsed since
  /// the last one. Called by the /varz handler on every scrape.
  void Tick(uint64_t now_ns = 0);

  /// Differences the live histograms against the best base capture for a
  /// `seconds`-long window ending now.
  WindowView Window(double seconds, uint64_t now_ns = 0) const;

  /// {"10s": {...}, "60s": {...}} — Tick() then the standard two windows.
  std::string Json(uint64_t now_ns = 0);

  /// Drops all captures (tests).
  void Clear();

 private:
  RollingWindows() = default;

  struct Capture {
    uint64_t t_ns = 0;
    std::vector<HistogramSnapshot> histograms;
  };

  mutable std::mutex mutex_;
  std::deque<Capture> captures_;
};

#else  // !ELSI_OBS_ENABLED

class RollingWindows {
 public:
  static RollingWindows& Get() {
    static RollingWindows windows;
    return windows;
  }
  void Tick(uint64_t = 0) {}
  WindowView Window(double seconds, uint64_t = 0) const {
    WindowView view;
    view.requested_s = seconds;
    return view;
  }
  std::string Json(uint64_t = 0);
  void Clear() {}
};

#endif  // ELSI_OBS_ENABLED

}  // namespace obs
}  // namespace elsi

#endif  // ELSI_OBS_ROLLING_H_
