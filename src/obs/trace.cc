#include "obs/trace.h"

#if ELSI_OBS_ENABLED

#include <algorithm>

namespace elsi {
namespace obs {

void TraceBuffer::Push(const TraceEvent& event) {
  bool dropped = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (ring_.size() < kCapacity) {
      ring_.push_back(event);
    } else {
      ring_[next_ % kCapacity] = event;
      dropped = true;
    }
    ++next_;
    ++total_;
  }
  if (dropped) {
    // Rings silently overwrite; the counter makes the loss visible on
    // /metrics, /healthz, and `elsi_cli stats`.
    static Counter& dropped_total = GetCounter("trace.dropped_total");
    dropped_total.Add();
  }
}

ThreadTrace TraceBuffer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ThreadTrace trace;
  trace.tid = tid_;
  trace.dropped = total_ - ring_.size();
  trace.events.reserve(ring_.size());
  if (ring_.size() < kCapacity) {
    trace.events = ring_;
  } else {
    // Unwrap the ring: oldest surviving event lives at next_ % kCapacity.
    const size_t head = next_ % kCapacity;
    trace.events.insert(trace.events.end(), ring_.begin() + head, ring_.end());
    trace.events.insert(trace.events.end(), ring_.begin(),
                        ring_.begin() + head);
  }
  return trace;
}

void TraceBuffer::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  next_ = 0;
  total_ = 0;
}

TraceRegistry& TraceRegistry::Get() {
  // Leaked so spans recorded during static destruction stay safe.
  static auto* registry = new TraceRegistry();
  return *registry;
}

TraceBuffer& TraceRegistry::CurrentThreadBuffer() {
  thread_local TraceBuffer* buffer = nullptr;
  if (buffer == nullptr) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto owned = std::make_shared<TraceBuffer>(next_tid_++);
    buffers_.push_back(owned);
    // The registry (leaked) holds the shared_ptr for the process lifetime,
    // so the raw pointer never dangles — even after this thread exits.
    buffer = owned.get();
  }
  return *buffer;
}

std::vector<ThreadTrace> TraceRegistry::Snapshot() const {
  std::vector<std::shared_ptr<TraceBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    buffers = buffers_;
  }
  std::vector<ThreadTrace> traces;
  traces.reserve(buffers.size());
  for (const auto& buffer : buffers) {
    traces.push_back(buffer->Snapshot());
  }
  std::sort(traces.begin(), traces.end(),
            [](const ThreadTrace& a, const ThreadTrace& b) {
              return a.tid < b.tid;
            });
  return traces;
}

void TraceRegistry::Clear() {
  std::vector<std::shared_ptr<TraceBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    buffers = buffers_;
  }
  for (const auto& buffer : buffers) {
    buffer->Clear();
  }
}

}  // namespace obs
}  // namespace elsi

#endif  // ELSI_OBS_ENABLED
