#include "obs/slow_query.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>
#include <string>

#include "obs/metrics.h"

namespace elsi {
namespace obs {

#if ELSI_OBS_ENABLED

namespace {

Counter& CapturedCounter() {
  static Counter& c = GetCounter("slow_queries.captured");
  return c;
}

Counter& DroppedCounter() {
  static Counter& c = GetCounter("slow_queries.dropped");
  return c;
}

Gauge& ThresholdGauge() {
  static Gauge& g = GetGauge("slow_queries.threshold_us");
  return g;
}

}  // namespace

void OnQueryRootComplete(const TraceEvent& event) {
  SlowQueryStore::Get().OnRootSpan(event);
}

SlowQueryStore& SlowQueryStore::Get() {
  // Leaked so query roots completing during static destruction stay safe
  // (same policy as TraceRegistry).
  static auto* store = new SlowQueryStore();
  return *store;
}

void SlowQueryStore::OnRootSpan(const TraceEvent& root) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (latencies_.size() < kLatencyWindow) {
    latencies_.push_back(root.dur_ns);
  } else {
    latencies_[latency_next_ % kLatencyWindow] = root.dur_ns;
  }
  ++latency_next_;
  ++roots_seen_;

  if (forced_threshold_ns_ == 0 && roots_seen_ >= kWarmupRoots &&
      (threshold_ns_ == 0 || roots_seen_ % kRecomputeEvery == 0)) {
    // Rolling-quantile threshold over the latency window. nth_element on a
    // copy: 512 u64s, runs at most once per kRecomputeEvery roots.
    std::vector<uint64_t> sorted = latencies_;
    const size_t rank = std::min(
        sorted.size() - 1,
        static_cast<size_t>(quantile_ * static_cast<double>(sorted.size())));
    std::nth_element(sorted.begin(), sorted.begin() + rank, sorted.end());
    threshold_ns_ = sorted[rank];
    ThresholdGauge().Set(static_cast<int64_t>(threshold_ns_ / 1000));
  }

  const uint64_t threshold =
      forced_threshold_ns_ != 0 ? forced_threshold_ns_ : threshold_ns_;
  if (threshold == 0 || root.dur_ns < threshold) return;
  CaptureLocked(root);
}

void SlowQueryStore::CaptureLocked(const TraceEvent& root) {
  SlowTrace capture;
  capture.trace_id = root.trace_id;
  capture.root_name = root.name;
  capture.start_ns = root.start_ns;
  capture.dur_ns = root.dur_ns;
  capture.threshold_ns =
      forced_threshold_ns_ != 0 ? forced_threshold_ns_ : threshold_ns_;
  capture.seq = captured_total_;

  // Assemble the tree: every thread's ring may hold spans of this trace
  // (the pool fans queries out), so filter the full registry snapshot by
  // trace_id. The root was pushed to its ring before this call, so the
  // tree always contains at least the root.
  for (const ThreadTrace& thread : TraceRegistry::Get().Snapshot()) {
    for (const TraceEvent& event : thread.events) {
      if (event.trace_id == root.trace_id) {
        capture.spans.push_back({event, thread.tid});
      }
    }
  }
  std::sort(capture.spans.begin(), capture.spans.end(),
            [](const SlowTraceSpan& a, const SlowTraceSpan& b) {
              if (a.event.start_ns != b.event.start_ns) {
                return a.event.start_ns < b.event.start_ns;
              }
              return a.event.dur_ns > b.event.dur_ns;  // outer span first
            });
  if (capture.spans.size() > kMaxSpansPerTrace) {
    capture.truncated = capture.spans.size() - kMaxSpansPerTrace;
    capture.spans.resize(kMaxSpansPerTrace);
  }

  // Orphans: spans whose parent fell off a ring (or was truncated above).
  // The count is surfaced so operators can tell a complete tree from one
  // assembled after wrap.
  std::vector<uint64_t> ids;
  ids.reserve(capture.spans.size());
  for (const SlowTraceSpan& span : capture.spans) ids.push_back(span.event.span_id);
  std::sort(ids.begin(), ids.end());
  for (const SlowTraceSpan& span : capture.spans) {
    if (span.event.parent_id != 0 &&
        !std::binary_search(ids.begin(), ids.end(), span.event.parent_id)) {
      ++capture.orphans;
    }
  }

  if (ring_.size() < kCapacity) {
    ring_.push_back(std::move(capture));
  } else {
    ring_[ring_next_ % kCapacity] = std::move(capture);
    DroppedCounter().Add();
  }
  ++ring_next_;
  ++captured_total_;
  CapturedCounter().Add();
}

std::vector<SlowTrace> SlowQueryStore::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < kCapacity) return ring_;
  // Unwrap: oldest surviving capture lives at ring_next_ % kCapacity.
  std::vector<SlowTrace> out;
  out.reserve(ring_.size());
  const size_t head = ring_next_ % kCapacity;
  out.insert(out.end(), ring_.begin() + head, ring_.end());
  out.insert(out.end(), ring_.begin(), ring_.begin() + head);
  return out;
}

uint64_t SlowQueryStore::threshold_ns() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return forced_threshold_ns_ != 0 ? forced_threshold_ns_ : threshold_ns_;
}

void SlowQueryStore::ForceThresholdNs(uint64_t ns) {
  std::lock_guard<std::mutex> lock(mutex_);
  forced_threshold_ns_ = ns;
}

void SlowQueryStore::SetQuantile(double q) {
  std::lock_guard<std::mutex> lock(mutex_);
  quantile_ = std::min(1.0, std::max(0.0, q));
}

void SlowQueryStore::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  latencies_.clear();
  latency_next_ = 0;
  roots_seen_ = 0;
  threshold_ns_ = 0;
  ring_.clear();
  ring_next_ = 0;
  captured_total_ = 0;
}

#endif  // ELSI_OBS_ENABLED

namespace {

std::string SlowJsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

std::string Us(uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1000.0);
  return buf;
}

/// True for the per-shard breakdown spans LocalShard records ("shard0",
/// "shard1", ...).
bool IsShardSpanName(const char* name) {
  if (name == nullptr) return false;
  std::string_view s(name);
  if (s.size() < 6 || s.substr(0, 5) != "shard") return false;
  for (const char c : s.substr(5)) {
    if (c < '0' || c > '9') return false;
  }
  return true;
}

}  // namespace

std::string SlowQueriesJson() {
  const std::vector<SlowTrace> traces = SlowQueryStore::Get().Snapshot();
  std::ostringstream out;
  out << "{\n  \"threshold_us\": " << Us(SlowQueryStore::Get().threshold_ns())
      << ",\n  \"captured\": "
      << GetCounter("slow_queries.captured").Value()
      << ",\n  \"dropped\": " << GetCounter("slow_queries.dropped").Value()
      << ",\n  \"traces\": [";
  for (size_t t = 0; t < traces.size(); ++t) {
    const SlowTrace& trace = traces[t];
    out << (t ? ",\n    " : "\n    ");
    out << "{\"trace_id\": " << trace.trace_id << ", \"seq\": " << trace.seq
        << ", \"root\": \""
        << SlowJsonEscape(trace.root_name != nullptr ? trace.root_name : "")
        << "\", \"start_us\": " << Us(trace.start_ns)
        << ", \"dur_us\": " << Us(trace.dur_ns)
        << ", \"threshold_us\": " << Us(trace.threshold_ns)
        << ", \"span_count\": " << trace.spans.size()
        << ", \"orphans\": " << trace.orphans
        << ", \"truncated\": " << trace.truncated;

    // Per-phase rollup: group spans by name; self time subtracts direct
    // children so nested phases don't double-count.
    std::map<uint64_t, uint64_t> child_ns;  // parent span_id -> sum of child dur
    for (const SlowTraceSpan& span : trace.spans) {
      if (span.event.parent_id != 0) {
        child_ns[span.event.parent_id] += span.event.dur_ns;
      }
    }
    struct Phase {
      uint64_t count = 0;
      uint64_t total_ns = 0;
      uint64_t self_ns = 0;
    };
    std::map<std::string, Phase> phases;   // ordered -> stable JSON
    std::map<std::string, Phase> shards;
    for (const SlowTraceSpan& span : trace.spans) {
      const char* name = span.event.name != nullptr ? span.event.name : "";
      Phase& phase = phases[name];
      ++phase.count;
      phase.total_ns += span.event.dur_ns;
      const auto it = child_ns.find(span.event.span_id);
      const uint64_t children = it != child_ns.end() ? it->second : 0;
      phase.self_ns += span.event.dur_ns > children
                           ? span.event.dur_ns - children
                           : 0;
      if (IsShardSpanName(span.event.name)) {
        Phase& shard = shards[name];
        ++shard.count;
        shard.total_ns += span.event.dur_ns;
      }
    }
    out << ", \"phases\": [";
    size_t i = 0;
    for (const auto& [name, phase] : phases) {
      out << (i++ ? ", " : "") << "{\"name\": \"" << SlowJsonEscape(name)
          << "\", \"count\": " << phase.count
          << ", \"total_us\": " << Us(phase.total_ns)
          << ", \"self_us\": " << Us(phase.self_ns) << "}";
    }
    out << "], \"shards\": [";
    i = 0;
    for (const auto& [name, shard] : shards) {
      out << (i++ ? ", " : "") << "{\"name\": \"" << SlowJsonEscape(name)
          << "\", \"count\": " << shard.count
          << ", \"total_us\": " << Us(shard.total_ns) << "}";
    }
    out << "], \"spans\": [";
    for (size_t s = 0; s < trace.spans.size(); ++s) {
      const SlowTraceSpan& span = trace.spans[s];
      out << (s ? ", " : "") << "{\"name\": \""
          << SlowJsonEscape(span.event.name != nullptr ? span.event.name : "")
          << "\", \"span\": " << span.event.span_id
          << ", \"parent\": " << span.event.parent_id
          << ", \"tid\": " << span.tid
          << ", \"ts_us\": " << Us(span.event.start_ns)
          << ", \"dur_us\": " << Us(span.event.dur_ns) << "}";
    }
    out << "]}";
  }
  out << (traces.empty() ? "]" : "\n  ]");
  out << "\n}\n";
  return out.str();
}

}  // namespace obs
}  // namespace elsi
