#ifndef ELSI_OBS_TRACE_H_
#define ELSI_OBS_TRACE_H_

/// Scoped trace spans recorded into per-thread ring buffers and exportable
/// as Chrome trace_event JSON (chrome://tracing, Perfetto). Usage:
///
///   void BuildProcessor::TrainModel(...) {
///     ELSI_TRACE_SPAN("build.train_model");
///     ...
///   }
///
/// The span records [start, end) wall time (obs::NowNs timebase, shared
/// with metrics) on destruction. Names must be string literals or other
/// static-storage strings — the buffer stores the pointer, not a copy.
///
/// With ELSI_OBS_ENABLED=0 the macro expands to nothing and the classes
/// below become empty stubs.

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"

#if ELSI_OBS_ENABLED
#include <memory>
#include <mutex>
#endif

namespace elsi {
namespace obs {

/// One completed span. `name` must point at static-storage characters.
/// Every span carries causal IDs: `span_id` is process-unique, `parent_id`
/// is the span that was active on the recording thread (or the context
/// adopted from the submitting thread) when this span opened, and
/// `trace_id` groups all spans of one logical request. A root span
/// (parent_id == 0) has trace_id == span_id.
struct TraceEvent {
  const char* name = nullptr;
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;
};

/// The active-span coordinates of one thread at one instant. Capture it
/// with CurrentTraceContext() on the submitting thread and adopt it with
/// TraceContextScope in the continuation so spans recorded on a worker
/// thread join the submitter's trace tree instead of rooting their own.
/// A default-constructed context is "no active trace": spans opened under
/// it become roots. ThreadPool::Submit does this automatically for every
/// pooled task, so TaskGroup / ParallelFor / SubmitFuture continuations
/// inherit the caller's tree without manual plumbing.
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
};

/// Optional per-span instrumentation hooks, installed by elsi::prof for
/// counter attribution. `enter` runs in the ScopedSpan constructor and
/// returns an opaque token (kSpanHookNoToken suppresses the exit call);
/// `exit` runs in the destructor with that token and the span's duration.
/// Hooks must be cheap, reentrancy-safe (spans nest) and must not create
/// spans themselves. The span captures both pointers at construction, so an
/// install/uninstall racing a live span never mismatches enter/exit pairs.
struct SpanHooks {
  uint64_t (*enter)(const char* name) = nullptr;
  void (*exit)(const char* name, uint64_t token, uint64_t dur_ns) = nullptr;
};

constexpr uint64_t kSpanHookNoToken = ~0ULL;

namespace internal {
inline std::atomic<uint64_t (*)(const char*)> g_span_enter{nullptr};
inline std::atomic<void (*)(const char*, uint64_t, uint64_t)> g_span_exit{
    nullptr};
}  // namespace internal

/// Installs (or, with null members, removes) the process-wide span hooks.
/// Works identically with ELSI_OBS off in the sense that it is callable,
/// but no spans exist to fire the hooks then.
inline void SetSpanHooks(const SpanHooks& hooks) {
  // exit is published before enter so a span can never observe an enter
  // hook without its matching exit hook.
  internal::g_span_exit.store(hooks.exit, std::memory_order_release);
  internal::g_span_enter.store(hooks.enter, std::memory_order_release);
}

/// All events of one thread, in ring order (oldest surviving first).
struct ThreadTrace {
  uint64_t tid = 0;
  uint64_t dropped = 0;  // events overwritten by the ring
  std::vector<TraceEvent> events;
};

#if ELSI_OBS_ENABLED

namespace internal {
// Process-wide span-ID allocator. IDs start at 1 so 0 stays "no span".
inline std::atomic<uint64_t> g_next_span_id{1};
inline uint64_t NextSpanId() {
  return g_next_span_id.fetch_add(1, std::memory_order_relaxed);
}
// The calling thread's active-span context. Read/written only by the
// owning thread (ScopedSpan and TraceContextScope), so plain TLS suffices.
inline thread_local TraceContext g_trace_context;
}  // namespace internal

/// The calling thread's active-span context (zero if no span is open).
inline TraceContext CurrentTraceContext() { return internal::g_trace_context; }

/// RAII adoption of a captured TraceContext: installs `ctx` as the calling
/// thread's active context for the current scope and restores the previous
/// context on exit. Used by ThreadPool::Submit to stitch pooled
/// continuations into the submitter's trace tree.
class TraceContextScope {
 public:
  explicit TraceContextScope(const TraceContext& ctx)
      : saved_(internal::g_trace_context) {
    internal::g_trace_context = ctx;
  }

  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;

  ~TraceContextScope() { internal::g_trace_context = saved_; }

 private:
  TraceContext saved_;
};

/// Feeds a completed root span of a query-flagged trace (see
/// ELSI_TRACE_QUERY_SPAN) into the slow-query store for tail-latency
/// capture. Defined in slow_query.cc; declared here so the inline
/// ScopedSpan destructor can call it without a header cycle.
void OnQueryRootComplete(const TraceEvent& event);

/// Fixed-capacity ring of completed spans for one thread. Push takes a
/// mutex, but it is only ever contended by Snapshot/Clear — each thread
/// owns exactly one buffer.
class TraceBuffer {
 public:
  static constexpr size_t kCapacity = 8192;

  explicit TraceBuffer(uint64_t tid) : tid_(tid) {}

  void Push(const TraceEvent& event);

  ThreadTrace Snapshot() const;
  void Clear();

  uint64_t tid() const { return tid_; }

 private:
  const uint64_t tid_;
  mutable std::mutex mutex_;
  std::vector<TraceEvent> ring_;  // grows to kCapacity then wraps
  size_t next_ = 0;               // ring slot of the next Push
  uint64_t total_ = 0;            // lifetime pushes (for `dropped`)
};

/// Owner of every thread's TraceBuffer. Buffers are created on a thread's
/// first span and kept alive for the process lifetime (shared_ptr in the
/// registry, raw thread_local fast path at the recording site), so exports
/// still see spans from threads that have exited.
class TraceRegistry {
 public:
  static TraceRegistry& Get();

  /// The calling thread's buffer (created on first use).
  TraceBuffer& CurrentThreadBuffer();

  /// Per-thread event lists, sorted by tid.
  std::vector<ThreadTrace> Snapshot() const;

  /// Drops recorded events from every buffer (buffers stay registered).
  void Clear();

 private:
  TraceRegistry() = default;

  mutable std::mutex mutex_;
  std::vector<std::shared_ptr<TraceBuffer>> buffers_;
  uint64_t next_tid_ = 1;
};

/// RAII span: stamps the start on construction, records the completed
/// event on destruction. Construction links the span under the thread's
/// active context (becoming a root when there is none) and makes the span
/// the active context for its scope; destruction restores the previous
/// context. `query_root` marks a query entry point: if such a span turns
/// out to root its trace (i.e. it is an end-to-end query, not a nested
/// call from a batch), its completion is offered to the slow-query store.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, bool query_root = false)
      : name_(name), query_root_(query_root) {
    const TraceContext parent = internal::g_trace_context;
    span_id_ = internal::NextSpanId();
    trace_id_ = parent.trace_id != 0 ? parent.trace_id : span_id_;
    parent_id_ = parent.span_id;
    saved_context_ = parent;
    internal::g_trace_context = TraceContext{trace_id_, span_id_};
    start_ns_ = NowNs();
    // Single relaxed load on the (overwhelmingly common) no-hook path keeps
    // the obs overhead budget intact with the profiler compiled in but idle.
    auto* enter = internal::g_span_enter.load(std::memory_order_relaxed);
    if (enter != nullptr) {
      hook_exit_ = internal::g_span_exit.load(std::memory_order_acquire);
      hook_token_ = enter(name);
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() {
    TraceEvent event;
    event.name = name_;
    event.start_ns = start_ns_;
    event.dur_ns = NowNs() - start_ns_;
    event.trace_id = trace_id_;
    event.span_id = span_id_;
    event.parent_id = parent_id_;
    internal::g_trace_context = saved_context_;
    TraceRegistry::Get().CurrentThreadBuffer().Push(event);
    if (hook_exit_ != nullptr && hook_token_ != kSpanHookNoToken) {
      hook_exit_(name_, hook_token_, event.dur_ns);
    }
    if (query_root_ && parent_id_ == 0) {
      OnQueryRootComplete(event);
    }
  }

 private:
  const char* name_;
  bool query_root_;
  uint64_t start_ns_ = 0;
  uint64_t trace_id_ = 0;
  uint64_t span_id_ = 0;
  uint64_t parent_id_ = 0;
  TraceContext saved_context_;
  uint64_t hook_token_ = kSpanHookNoToken;
  void (*hook_exit_)(const char*, uint64_t, uint64_t) = nullptr;
};

#define ELSI_OBS_SPAN_CONCAT2(a, b) a##b
#define ELSI_OBS_SPAN_CONCAT(a, b) ELSI_OBS_SPAN_CONCAT2(a, b)
/// Records a span named `name` (a string literal) covering the rest of the
/// enclosing scope.
#define ELSI_TRACE_SPAN(name)                                  \
  ::elsi::obs::ScopedSpan ELSI_OBS_SPAN_CONCAT(elsi_obs_span_, \
                                               __COUNTER__)(name)
/// Same, but marks the span as a query entry point eligible for
/// slow-query capture when it roots its trace (see ScopedSpan).
#define ELSI_TRACE_QUERY_SPAN(name)                            \
  ::elsi::obs::ScopedSpan ELSI_OBS_SPAN_CONCAT(elsi_obs_span_, \
                                               __COUNTER__)(name, true)

#else  // !ELSI_OBS_ENABLED

inline TraceContext CurrentTraceContext() { return {}; }

class TraceContextScope {
 public:
  explicit TraceContextScope(const TraceContext&) {}
  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;
};

class TraceBuffer {
 public:
  void Push(const TraceEvent&) {}
  ThreadTrace Snapshot() const { return {}; }
  void Clear() {}
  uint64_t tid() const { return 0; }
};

class TraceRegistry {
 public:
  static TraceRegistry& Get() {
    static TraceRegistry registry;
    return registry;
  }
  TraceBuffer& CurrentThreadBuffer() { return buffer_; }
  std::vector<ThreadTrace> Snapshot() const { return {}; }
  void Clear() {}

 private:
  TraceBuffer buffer_;
};

class ScopedSpan {
 public:
  explicit ScopedSpan(const char*, bool = false) {}
};

#define ELSI_TRACE_SPAN(name) \
  do {                        \
  } while (false)
#define ELSI_TRACE_QUERY_SPAN(name) \
  do {                              \
  } while (false)

#endif  // ELSI_OBS_ENABLED

}  // namespace obs
}  // namespace elsi

#endif  // ELSI_OBS_TRACE_H_
