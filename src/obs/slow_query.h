#ifndef ELSI_OBS_SLOW_QUERY_H_
#define ELSI_OBS_SLOW_QUERY_H_

/// Slow-query trace store: tail-latency capture for causal trace trees.
///
/// Every query entry point records its span with ELSI_TRACE_QUERY_SPAN;
/// when such a span roots its trace (it is the end-to-end query, not a
/// nested call), its completion is fed to SlowQueryStore::OnRootSpan. The
/// store keeps a rolling window of recent end-to-end latencies, derives an
/// adaptive threshold (a configurable quantile, default p95), and when a
/// root exceeds the threshold it assembles the query's *complete* trace
/// tree — collecting spans by trace_id across every thread's ring buffer —
/// into a bounded ring of SlowTrace records. /debug/slow and `elsi_cli
/// slow` render the ring with per-phase and per-shard breakdowns.
///
/// Sizing: kLatencyWindow (512) root latencies bound the threshold
/// estimate; kCapacity (32) captured trees bound memory (a tree is at most
/// kMaxSpansPerTrace span records). Capture is rare by construction (only
/// tail queries) and takes the store mutex, so the hot path cost for a
/// sub-threshold query is one mutex-guarded push of a single uint64.
///
/// With ELSI_OBS_ENABLED=0 everything degrades to inline no-op stubs.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.h"

#if ELSI_OBS_ENABLED
#include <mutex>
#endif

namespace elsi {
namespace obs {

/// One span of a captured slow trace, with the thread that recorded it.
struct SlowTraceSpan {
  TraceEvent event;
  uint64_t tid = 0;
};

/// One captured tail query: the root span plus every span of its tree that
/// was still resident in the per-thread rings at capture time.
struct SlowTrace {
  uint64_t trace_id = 0;
  const char* root_name = nullptr;
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
  uint64_t threshold_ns = 0;  // adaptive threshold at capture time
  uint64_t seq = 0;           // capture sequence (monotonic, for ordering)
  uint64_t orphans = 0;       // spans whose parent was lost to ring wrap
  uint64_t truncated = 0;     // spans dropped by kMaxSpansPerTrace
  std::vector<SlowTraceSpan> spans;  // sorted by start_ns, root first
};

#if ELSI_OBS_ENABLED

class SlowQueryStore {
 public:
  static constexpr size_t kCapacity = 32;          // captured trace trees
  static constexpr size_t kLatencyWindow = 512;    // rolling root latencies
  static constexpr size_t kWarmupRoots = 64;       // before first threshold
  static constexpr size_t kRecomputeEvery = 32;    // roots per recompute
  static constexpr size_t kMaxSpansPerTrace = 4096;

  static SlowQueryStore& Get();

  /// Called by ScopedSpan for every completed query-root span. Updates the
  /// latency window / adaptive threshold and captures the trace tree when
  /// the root is at or above the threshold.
  void OnRootSpan(const TraceEvent& root);

  /// Copies of the captured traces, oldest first.
  std::vector<SlowTrace> Snapshot() const;

  /// Current capture threshold (0 until warmed up and not forced).
  uint64_t threshold_ns() const;

  /// Test/ops knobs. Force 0 returns to adaptive mode. The quantile
  /// applies to the rolling latency window (default 0.95).
  void ForceThresholdNs(uint64_t ns);
  void SetQuantile(double q);

  /// Drops captured traces and latency history (threshold resets too).
  void Clear();

 private:
  SlowQueryStore() = default;

  void CaptureLocked(const TraceEvent& root);

  mutable std::mutex mutex_;
  std::vector<uint64_t> latencies_;  // ring of kLatencyWindow root latencies
  size_t latency_next_ = 0;
  uint64_t roots_seen_ = 0;
  uint64_t threshold_ns_ = 0;
  uint64_t forced_threshold_ns_ = 0;
  double quantile_ = 0.95;
  std::vector<SlowTrace> ring_;  // grows to kCapacity then wraps
  size_t ring_next_ = 0;
  uint64_t captured_total_ = 0;
};

#else  // !ELSI_OBS_ENABLED

class SlowQueryStore {
 public:
  static SlowQueryStore& Get() {
    static SlowQueryStore store;
    return store;
  }
  void OnRootSpan(const TraceEvent&) {}
  std::vector<SlowTrace> Snapshot() const { return {}; }
  uint64_t threshold_ns() const { return 0; }
  void ForceThresholdNs(uint64_t) {}
  void SetQuantile(double) {}
  void Clear() {}
};

#endif  // ELSI_OBS_ENABLED

/// JSON document for /debug/slow: threshold, capture counters, and each
/// captured trace with per-phase (by span name) and per-shard breakdowns
/// plus the full span list. Valid (mostly empty) JSON with obs disabled.
std::string SlowQueriesJson();

}  // namespace obs
}  // namespace elsi

#endif  // ELSI_OBS_SLOW_QUERY_H_
