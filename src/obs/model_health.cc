#include "obs/model_health.h"

#include <cstdio>
#include <sstream>

#include "obs/metrics.h"

namespace elsi {
namespace obs {

namespace {

std::string Fixed(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace

std::string ModelHealthJson(const std::vector<IndexHealth>& health) {
  std::ostringstream out;
  bool any_degraded = false;
  out << "{\"indexes\": [";
  for (size_t i = 0; i < health.size(); ++i) {
    const IndexHealth& h = health[i];
    any_degraded = any_degraded || h.degraded;
    out << (i ? ",\n  " : "\n  ") << "{\"index\": \"" << h.index
        << "\", \"builds\": " << h.builds << ", \"samples\": " << h.samples
        << ", \"baseline_scan\": " << Fixed(h.baseline_scan)
        << ", \"current_scan\": " << Fixed(h.current_scan)
        << ", \"baseline_error\": " << Fixed(h.baseline_error)
        << ", \"current_error\": " << Fixed(h.current_error)
        << ", \"scan_drift\": " << Fixed(h.scan_drift)
        << ", \"error_drift\": " << Fixed(h.error_drift)
        << ", \"degraded\": " << (h.degraded ? "true" : "false")
        << ", \"last_rebuild_score\": " << Fixed(h.last_rebuild_score)
        << ", \"observed_benefit\": " << Fixed(h.observed_benefit) << "}";
  }
  out << (health.empty() ? "]" : "\n]")
      << ", \"degraded\": " << (any_degraded ? "true" : "false") << "}\n";
  return out.str();
}

#if ELSI_OBS_ENABLED

ModelHealthMonitor& ModelHealthMonitor::Get() {
  // Leaked for the same reason as MetricsRegistry: samples may arrive from
  // worker threads during static destruction.
  static auto* monitor = new ModelHealthMonitor();
  return *monitor;
}

void ModelHealthMonitor::OnBuild(const std::string& index) {
  std::lock_guard<std::mutex> lock(mutex_);
  State& s = states_[index];
  ++s.builds;
  s.samples = 0;
  s.baseline_n = 0;
  s.baseline_scan_sum = 0;
  s.baseline_error_sum = 0;
  s.ewma_seeded = false;
  // benefit_pending (set by a triggered rebuild decision) survives: the
  // fresh baseline this build accumulates is exactly the "after" term of
  // the calibration ratio, closed in OnQuerySample when the window fills.
}

void ModelHealthMonitor::OnQuerySample(const QueryRecord& record) {
  if (record.index == nullptr) return;
  IndexHealth published;
  std::string name;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    name.assign(record.index);
    State& s = states_[name];
    ++s.samples;
    const double scan = static_cast<double>(record.scan_len);
    const double error = record.pred_error;
    if (s.baseline_n < kBaselineWindow) {
      ++s.baseline_n;
      s.baseline_scan_sum += scan;
      s.baseline_error_sum += error;
      if (s.baseline_n == kBaselineWindow && s.benefit_pending) {
        const double after = s.baseline_scan_sum / kBaselineWindow;
        if (after > 0 && s.pre_rebuild_scan > 0) {
          s.observed_benefit = s.pre_rebuild_scan / after;
        }
        s.benefit_pending = false;
      }
    } else if (!s.ewma_seeded) {
      s.ewma_scan = scan;
      s.ewma_error = error;
      s.ewma_seeded = true;
    } else {
      s.ewma_scan += kAlpha * (scan - s.ewma_scan);
      s.ewma_error += kAlpha * (error - s.ewma_error);
    }
    published = Summarise(name, s);
  }
  PublishGauges(name, published);
}

void ModelHealthMonitor::OnRebuildDecision(const std::string& index,
                                           double score, bool triggered) {
  std::lock_guard<std::mutex> lock(mutex_);
  State& s = states_[index];
  s.last_score = score;
  if (triggered) {
    s.pre_rebuild_scan = s.ewma_seeded
                             ? s.ewma_scan
                             : (s.baseline_n > 0 ? s.baseline_scan_sum /
                                                       s.baseline_n
                                                 : 0);
    s.benefit_pending = true;
  }
}

IndexHealth ModelHealthMonitor::Summarise(const std::string& name,
                                          const State& s) const {
  IndexHealth h;
  h.index = name;
  h.builds = s.builds;
  h.samples = s.samples;
  if (s.baseline_n > 0) {
    h.baseline_scan = s.baseline_scan_sum / s.baseline_n;
    h.baseline_error = s.baseline_error_sum / s.baseline_n;
  }
  h.current_scan = s.ewma_seeded ? s.ewma_scan : h.baseline_scan;
  h.current_error = s.ewma_seeded ? s.ewma_error : h.baseline_error;
  // Drift compares EWMA to the post-build baseline. A zero baseline (e.g.
  // perfectly predicted single-position scans) treats any positive current
  // value as already-drifted only once it clears the degraded bar.
  if (h.baseline_scan > 0) {
    h.scan_drift = h.current_scan / h.baseline_scan;
  } else {
    h.scan_drift = h.current_scan > 0 ? kDegradedRatio : 1.0;
  }
  if (h.baseline_error > 0) {
    h.error_drift = h.current_error / h.baseline_error;
  } else {
    h.error_drift = h.current_error > 1.0 ? kDegradedRatio : 1.0;
  }
  const uint64_t post_baseline =
      s.samples > s.baseline_n ? s.samples - s.baseline_n : 0;
  h.degraded = s.baseline_n >= kBaselineWindow &&
               post_baseline >= kMinDriftSamples &&
               (h.scan_drift >= kDegradedRatio ||
                h.error_drift >= kDegradedRatio);
  h.last_rebuild_score = s.last_score;
  h.observed_benefit = s.observed_benefit;
  return h;
}

void ModelHealthMonitor::PublishGauges(const std::string& name,
                                       const IndexHealth& h) {
  // Registry lookups take a mutex, but this runs once per *sampled* query
  // (1/sample_every), not per query.
  auto permille = [](double v) { return static_cast<int64_t>(v * 1000.0); };
  GetGauge("model.scan_drift_permille{index=" + name + "}")
      .Set(permille(h.scan_drift));
  GetGauge("model.error_drift_permille{index=" + name + "}")
      .Set(permille(h.error_drift));
  GetGauge("model.degraded{index=" + name + "}").Set(h.degraded ? 1 : 0);
}

std::vector<IndexHealth> ModelHealthMonitor::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<IndexHealth> out;
  out.reserve(states_.size());
  for (const auto& [name, state] : states_) {
    out.push_back(Summarise(name, state));
  }
  return out;
}

bool ModelHealthMonitor::AnyDegraded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, state] : states_) {
    if (Summarise(name, state).degraded) return true;
  }
  return false;
}

void ModelHealthMonitor::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  states_.clear();
}

#endif  // ELSI_OBS_ENABLED

}  // namespace obs
}  // namespace elsi
