#ifndef ELSI_OBS_MODEL_HEALTH_H_
#define ELSI_OBS_MODEL_HEALTH_H_

/// Model-health monitor: per-index drift tracking for learned structures.
///
/// A learned index is "healthy" when its model still predicts positions
/// about as well as it did right after the last (re)build. The monitor
/// consumes the flight recorder's sampled QueryRecords (so it costs nothing
/// on unsampled queries), splits them into a post-build baseline window and
/// a running EWMA, and reports drift as current/baseline ratios for both
/// scan length and prediction error. It also calibrates the rebuild
/// predictor: every UpdateProcessor rebuild decision logs its predicted
/// score, and the next completed rebuild measures the observed benefit
/// (pre-rebuild scan EWMA over the fresh post-rebuild baseline).
///
/// Feeds three consumers: /healthz (degraded status per index), /varz and
/// /metrics (gauges `model.scan_drift_permille{index=...}` etc.), and
/// `elsi_cli stats`.
///
/// With ELSI_OBS_ENABLED=0 the monitor is an empty stub.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/flight_recorder.h"

#if ELSI_OBS_ENABLED
#include <map>
#include <mutex>
#endif

namespace elsi {
namespace obs {

/// Point-in-time health of one index (the unit of export).
struct IndexHealth {
  std::string index;
  uint64_t builds = 0;        // OnBuild calls seen
  uint64_t samples = 0;       // sampled queries since last build
  double baseline_scan = 0;   // mean scan length over the baseline window
  double current_scan = 0;    // EWMA of scan length after the window
  double baseline_error = 0;  // mean |prediction error| over the window
  double current_error = 0;   // EWMA after the window
  double scan_drift = 1.0;    // current_scan / baseline_scan (1.0 = healthy)
  double error_drift = 1.0;   // current_error / baseline_error
  bool degraded = false;
  // Rebuild-predictor calibration: last decision's predicted score and the
  // observed benefit of the last completed rebuild (pre-rebuild scan EWMA /
  // post-rebuild baseline mean; >1 means the rebuild helped). NaN-free:
  // zero means "not yet measured".
  double last_rebuild_score = 0;
  double observed_benefit = 0;
};

/// {"indexes": [...], "degraded": bool} — consumed by /healthz.
std::string ModelHealthJson(const std::vector<IndexHealth>& health);

#if ELSI_OBS_ENABLED

class ModelHealthMonitor {
 public:
  /// Samples that form the post-build baseline before drift is evaluated.
  static constexpr uint64_t kBaselineWindow = 64;
  /// EWMA weight of each new sample after the baseline window.
  static constexpr double kAlpha = 0.05;
  /// Drift ratio beyond which an index reports degraded (either axis).
  static constexpr double kDegradedRatio = 2.0;
  /// Minimum post-baseline samples before degraded can trip (debounce).
  static constexpr uint64_t kMinDriftSamples = 16;

  static ModelHealthMonitor& Get();

  /// A (re)build completed for `index`: restart the baseline window. If a
  /// triggered rebuild decision is pending, the new baseline closes its
  /// calibration loop once filled.
  void OnBuild(const std::string& index);

  /// One sampled query (called by ~QueryScope, i.e. 1/sample_every).
  void OnQuerySample(const QueryRecord& record);

  /// UpdateProcessor rebuild decision: `score` is the predictor's output,
  /// `triggered` whether a rebuild was actually launched.
  void OnRebuildDecision(const std::string& index, double score,
                         bool triggered);

  std::vector<IndexHealth> Snapshot() const;

  /// True if any tracked index currently reports degraded.
  bool AnyDegraded() const;

  /// Forgets every index. Test-only.
  void Reset();

 private:
  struct State {
    uint64_t builds = 0;
    uint64_t samples = 0;       // since last build
    uint64_t baseline_n = 0;    // samples inside the window
    double baseline_scan_sum = 0;
    double baseline_error_sum = 0;
    double ewma_scan = 0;
    double ewma_error = 0;
    bool ewma_seeded = false;
    double last_score = 0;
    double pre_rebuild_scan = 0;  // EWMA frozen when a rebuild triggers
    bool benefit_pending = false;
    double observed_benefit = 0;
  };

  ModelHealthMonitor() = default;

  IndexHealth Summarise(const std::string& name, const State& s) const;
  void PublishGauges(const std::string& name, const IndexHealth& h);

  mutable std::mutex mutex_;
  std::map<std::string, State> states_;
};

#else  // !ELSI_OBS_ENABLED — inline no-op stubs, same API.

class ModelHealthMonitor {
 public:
  static constexpr uint64_t kBaselineWindow = 64;
  static ModelHealthMonitor& Get() {
    static ModelHealthMonitor monitor;
    return monitor;
  }
  void OnBuild(const std::string&) {}
  void OnQuerySample(const QueryRecord&) {}
  void OnRebuildDecision(const std::string&, double, bool) {}
  std::vector<IndexHealth> Snapshot() const { return {}; }
  bool AnyDegraded() const { return false; }
  void Reset() {}
};

#endif  // ELSI_OBS_ENABLED

}  // namespace obs
}  // namespace elsi

#endif  // ELSI_OBS_MODEL_HEALTH_H_
