#include "obs/flight_recorder.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "obs/model_health.h"

namespace elsi {
namespace obs {

std::string QueriesJson(const FlightSnapshot& snapshot) {
  std::ostringstream out;
  out << "{\"sample_every\": " << snapshot.sample_every
      << ", \"dropped\": " << snapshot.dropped << ", \"records\": [";
  for (size_t i = 0; i < snapshot.records.size(); ++i) {
    const QueryRecord& r = snapshot.records[i];
    char error[32];
    std::snprintf(error, sizeof(error), "%.1f", r.pred_error);
    out << (i ? ",\n  " : "\n  ") << "{\"trace_id\": " << r.trace_id
        << ", \"kind\": \"" << QueryKindName(r.kind) << "\", \"index\": \""
        << (r.index != nullptr ? r.index : "") << "\", \"tid\": " << r.tid
        << ", \"start_ns\": " << r.start_ns
        << ", \"latency_ns\": " << r.latency_ns
        << ", \"scan_len\": " << r.scan_len
        << ", \"segments\": " << r.segments << ", \"pred_error\": " << error
        << "}";
  }
  out << (snapshot.records.empty() ? "]" : "\n]") << "}\n";
  return out.str();
}

#if ELSI_OBS_ENABLED

uint64_t FlightRing::Collect(std::vector<QueryRecord>* out) const {
  const uint64_t head = head_.load(std::memory_order_acquire);
  const uint64_t live = std::min<uint64_t>(head, kCapacity);
  for (uint64_t i = head - live; i < head; ++i) {
    const Slot& slot = slots_[i % kCapacity];
    // Seqlock read: stable when the sequence is even and unchanged across
    // the copy. A slot the writer is overwriting right now is skipped —
    // it will surface (as a newer record) in the next snapshot.
    const uint64_t seq0 = slot.seq.load(std::memory_order_acquire);
    if (seq0 % 2 != 0) continue;
    QueryRecord copy = slot.record;
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != seq0) continue;
    out->push_back(copy);
  }
  return head;
}

void FlightRing::Clear() {
  // Reader-side reset: safe only when the owning thread is quiescent (the
  // same caveat as MetricsRegistry::Reset — test/export plumbing, not a hot
  // path). The head is left in place so lifetime drop accounting survives.
  const uint64_t head = head_.load(std::memory_order_acquire);
  for (auto& slot : slots_) {
    slot.seq.store(2 * head + 1, std::memory_order_release);
  }
}

FlightRecorder::FlightRecorder() {
  if (const char* env = std::getenv("ELSI_FLIGHT_SAMPLE_EVERY")) {
    const long long parsed = std::atoll(env);
    sample_every_.store(parsed >= 0 ? static_cast<uint64_t>(parsed) : 0,
                        std::memory_order_relaxed);
  }
}

FlightRecorder& FlightRecorder::Get() {
  // Leaked so records written during static destruction stay safe.
  static auto* recorder = new FlightRecorder();
  return *recorder;
}

FlightRing& FlightRecorder::CurrentThreadRing() {
  thread_local FlightRing* ring = nullptr;
  if (ring == nullptr) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto owned = std::make_shared<FlightRing>(next_tid_++);
    rings_.push_back(owned);
    // The leaked registry keeps the shared_ptr alive forever, so the raw
    // thread_local never dangles.
    ring = owned.get();
  }
  return *ring;
}

FlightSnapshot FlightRecorder::Snapshot() const {
  std::vector<std::shared_ptr<FlightRing>> rings;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    rings = rings_;
  }
  FlightSnapshot snap;
  snap.sample_every = sample_every();
  for (const auto& ring : rings) {
    const uint64_t pushes = ring->Collect(&snap.records);
    snap.dropped += pushes > FlightRing::kCapacity
                        ? pushes - FlightRing::kCapacity
                        : 0;
  }
  std::stable_sort(snap.records.begin(), snap.records.end(),
                   [](const QueryRecord& a, const QueryRecord& b) {
                     return a.start_ns < b.start_ns;
                   });
  return snap;
}

void FlightRecorder::Clear() {
  std::vector<std::shared_ptr<FlightRing>> rings;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    rings = rings_;
  }
  for (const auto& ring : rings) ring->Clear();
}

thread_local QueryScope* QueryScope::tls_active_ = nullptr;
thread_local uint32_t QueryScope::tls_depth_ = 0;

namespace {

thread_local uint64_t tls_query_tick = 0;
thread_local uint64_t tls_trace_seq = 0;

Histogram& FlightLatencyHistogram(QueryKind kind) {
  static Histogram& point = GetHistogram("query.flight.latency_us{kind=point}",
                                         HistogramSpec::LatencyUs());
  static Histogram& window = GetHistogram(
      "query.flight.latency_us{kind=window}", HistogramSpec::LatencyUs());
  static Histogram& knn = GetHistogram("query.flight.latency_us{kind=knn}",
                                       HistogramSpec::LatencyUs());
  switch (kind) {
    case QueryKind::kWindow:
      return window;
    case QueryKind::kKnn:
      return knn;
    default:
      return point;
  }
}

}  // namespace

QueryScope::QueryScope(const char* index, QueryKind kind) {
  // Only the outermost scope samples: a kNN query's internal window probes
  // must not produce their own records (or advance the sampler).
  if (++tls_depth_ > 1) return;
  const uint64_t every = FlightRecorder::Get().sample_every();
  if (every == 0 || (++tls_query_tick % every) != 0) return;
  FlightRing& ring = FlightRecorder::Get().CurrentThreadRing();
  record_.index = index;
  record_.kind = kind;
  record_.tid = ring.tid();
  record_.trace_id = (static_cast<uint64_t>(ring.tid()) << 32) |
                     (++tls_trace_seq & 0xffffffffu);
  record_.start_ns = NowNs();
  sampled_ = true;
  tls_active_ = this;
}

QueryScope::~QueryScope() {
  --tls_depth_;
  if (!sampled_) return;
  tls_active_ = nullptr;
  record_.latency_ns = NowNs() - record_.start_ns;
  FlightRecorder::Get().CurrentThreadRing().Push(record_);
  FlightLatencyHistogram(record_.kind)
      .Observe(static_cast<double>(record_.latency_ns) / 1000.0);
  ModelHealthMonitor::Get().OnQuerySample(record_);
}

#endif  // ELSI_OBS_ENABLED

}  // namespace obs
}  // namespace elsi
