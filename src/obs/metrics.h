#ifndef ELSI_OBS_METRICS_H_
#define ELSI_OBS_METRICS_H_

/// elsi::obs — the process-wide telemetry layer (see DESIGN.md,
/// "Observability"). Counters and gauges are single relaxed atomics;
/// histograms shard their buckets across cache lines so hot paths touching
/// the same metric from many threads never serialise. Metric handles are
/// resolved once per call site (function-local static references) and stay
/// valid for the process lifetime.
///
/// Compile-out: building with -DELSI_OBS=OFF defines ELSI_OBS_ENABLED=0 and
/// every type below becomes an empty inline stub — call sites compile
/// unchanged and the optimiser removes them entirely.

#ifndef ELSI_OBS_ENABLED
#define ELSI_OBS_ENABLED 1
#endif

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#if ELSI_OBS_ENABLED
#include <algorithm>
#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#endif

namespace elsi {
namespace obs {

/// Bucket layout of a histogram: ascending inclusive upper bounds
/// (Prometheus `le` semantics); an implicit +Inf bucket catches the rest.
struct HistogramSpec {
  std::vector<double> bounds;

  /// bounds[i] = first * factor^i, `count` buckets (plus the +Inf bucket).
  static HistogramSpec Exponential(double first, double factor, size_t count);
  /// bounds[i] = start + i * step.
  static HistogramSpec Linear(double start, double step, size_t count);

  /// 1us..~8.4s in powers of two — latency recorded in microseconds.
  static HistogramSpec LatencyUs() { return Exponential(1.0, 2.0, 24); }
  /// 0.125ms..~65s in powers of two — latency recorded in milliseconds.
  static HistogramSpec LatencyMs() { return Exponential(0.125, 2.0, 20); }
  /// 1..2^23 in powers of two — sizes and scan lengths.
  static HistogramSpec Count() { return Exponential(1.0, 2.0, 24); }
  /// 0.05..1.0 in steps of 0.05 — probabilities and ratios.
  static HistogramSpec Unit() { return Linear(0.05, 0.05, 20); }
};

/// Point-in-time copy of one histogram (also the unit of export).
struct HistogramSnapshot {
  std::string name;
  std::vector<double> bounds;
  std::vector<uint64_t> counts;  // bounds.size() + 1 (last is +Inf).
  uint64_t total = 0;
  double sum = 0.0;

  /// Linear interpolation inside the owning bucket; q in [0, 1].
  double ApproxQuantile(double q) const;
};

/// Point-in-time copy of the whole registry, sorted by name.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<HistogramSnapshot> histograms;
};

#if ELSI_OBS_ENABLED

/// Nanoseconds since an arbitrary process-local epoch (steady clock). The
/// shared timebase of metrics and trace spans.
uint64_t NowNs();

/// True on every 32nd call per thread — cheap sampling for per-query hot
/// paths where even a clock read would show up in the profile.
inline bool SampleTick() {
  thread_local uint32_t tick = 0;
  return (++tick & 31u) == 0;
}

/// Monotonically increasing event counter.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (queue depths, buffer sizes).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket histogram with sharded atomic buckets: each thread lands on
/// one of kShards cache-line-aligned bucket arrays (by a per-thread id), so
/// concurrent Observe calls from the pool touch disjoint lines. Snapshots
/// sum the shards.
class Histogram {
 public:
  explicit Histogram(const HistogramSpec& spec);

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double value);

  /// Index of the bucket `value` falls into (the layout of
  /// Snapshot().counts; bounds().size() is the +Inf bucket). Non-atomic —
  /// used by LocalHistogram to pre-bucket without touching shared lines.
  size_t BucketOf(double value) const {
    return static_cast<size_t>(
        std::lower_bound(bounds_.begin(), bounds_.end(), value) -
        bounds_.begin());
  }

  /// Bulk-merges pre-bucketed counts (`counts` has `size` entries, indexed
  /// like Snapshot().counts) plus their value sum: the amortised Observe
  /// used by LocalHistogram. One shard touch per non-empty bucket.
  void MergeCounts(const uint64_t* counts, size_t size, double value_sum);

  /// Zeroes every shard in place; outstanding handles stay valid.
  void Clear();

  const std::vector<double>& bounds() const { return bounds_; }
  /// Summed-over-shards copy (name left empty; the registry fills it).
  HistogramSnapshot Snapshot() const;
  uint64_t TotalCount() const { return Snapshot().total; }
  double Sum() const { return Snapshot().sum; }

 private:
  static constexpr size_t kShards = 8;

  struct alignas(64) Shard {
    // counts[i] for bucket i; one extra +Inf bucket at the end. Allocated
    // once in the constructor, never resized.
    std::vector<std::atomic<uint64_t>> counts;
    std::atomic<double> sum{0.0};
  };

  std::vector<double> bounds_;
  std::vector<Shard> shards_;
};

/// Owner of every metric in the process. Registration (name lookup) takes a
/// mutex — call sites cache the returned reference in a function-local
/// static so the hot path never sees it.
class MetricsRegistry {
 public:
  static MetricsRegistry& Get();

  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  /// The spec only matters on first registration; later lookups of the same
  /// name return the existing histogram unchanged.
  Histogram& GetHistogram(std::string_view name, const HistogramSpec& spec);

  MetricsSnapshot Snapshot() const;

  /// Zeroes every value but keeps registrations (and outstanding handles)
  /// valid. Test-only — concurrent Observe during Reset may survive it.
  void Reset();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mutex_;
  // std::map keeps export order deterministic; unique_ptr keeps handles
  // stable across rehash-free inserts.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

inline Counter& GetCounter(std::string_view name) {
  return MetricsRegistry::Get().GetCounter(name);
}
inline Gauge& GetGauge(std::string_view name) {
  return MetricsRegistry::Get().GetGauge(name);
}
inline Histogram& GetHistogram(std::string_view name,
                               const HistogramSpec& spec) {
  return MetricsRegistry::Get().GetHistogram(name, spec);
}

/// Call-site accumulator for per-item integer observations on paths too hot
/// for an atomic RMW per call (the predict-and-scan loops): buckets counts
/// into plain local memory and merges into the shared histogram every
/// kFlushEvery observations and on destruction. Use one per thread
/// (`thread_local`) for serial loops — snapshots may then lag by up to
/// kFlushEvery - 1 observations per thread — or one per batch call
/// (stack), which flushes deterministically when the call returns.
class LocalHistogram {
 public:
  explicit LocalHistogram(Histogram& sink)
      : sink_(sink), counts_(sink.bounds().size() + 1, 0) {}

  LocalHistogram(const LocalHistogram&) = delete;
  LocalHistogram& operator=(const LocalHistogram&) = delete;

  ~LocalHistogram() { Flush(); }

  void Observe(uint64_t value) {
    ++counts_[sink_.BucketOf(static_cast<double>(value))];
    sum_ += value;
    if (++pending_ >= kFlushEvery) Flush();
  }

  void Flush() {
    if (pending_ == 0) return;
    sink_.MergeCounts(counts_.data(), counts_.size(),
                      static_cast<double>(sum_));
    std::fill(counts_.begin(), counts_.end(), 0);
    sum_ = 0;
    pending_ = 0;
  }

 private:
  static constexpr uint32_t kFlushEvery = 64;

  Histogram& sink_;
  std::vector<uint64_t> counts_;
  uint64_t sum_ = 0;
  uint32_t pending_ = 0;
};

#else  // !ELSI_OBS_ENABLED — inline no-op stubs, same API.

inline uint64_t NowNs() { return 0; }
inline bool SampleTick() { return false; }

class Counter {
 public:
  void Add(uint64_t = 1) {}
  uint64_t Value() const { return 0; }
};

class Gauge {
 public:
  void Set(int64_t) {}
  void Add(int64_t) {}
  int64_t Value() const { return 0; }
};

class Histogram {
 public:
  void Observe(double) {}
  size_t BucketOf(double) const { return 0; }
  void MergeCounts(const uint64_t*, size_t, double) {}
  void Clear() {}
  const std::vector<double>& bounds() const {
    static const std::vector<double> kEmpty;
    return kEmpty;
  }
  HistogramSnapshot Snapshot() const { return {}; }
  uint64_t TotalCount() const { return 0; }
  double Sum() const { return 0.0; }
};

class MetricsRegistry {
 public:
  static MetricsRegistry& Get() {
    static MetricsRegistry registry;
    return registry;
  }
  Counter& GetCounter(std::string_view) { return counter_; }
  Gauge& GetGauge(std::string_view) { return gauge_; }
  Histogram& GetHistogram(std::string_view, const HistogramSpec&) {
    return histogram_;
  }
  MetricsSnapshot Snapshot() const { return {}; }
  void Reset() {}

 private:
  Counter counter_;
  Gauge gauge_;
  Histogram histogram_;
};

inline Counter& GetCounter(std::string_view name) {
  return MetricsRegistry::Get().GetCounter(name);
}
inline Gauge& GetGauge(std::string_view name) {
  return MetricsRegistry::Get().GetGauge(name);
}
inline Histogram& GetHistogram(std::string_view name,
                               const HistogramSpec& spec) {
  return MetricsRegistry::Get().GetHistogram(name, spec);
}

class LocalHistogram {
 public:
  explicit LocalHistogram(Histogram&) {}
  void Observe(uint64_t) {}
  void Flush() {}
};

#endif  // ELSI_OBS_ENABLED

}  // namespace obs
}  // namespace elsi

#endif  // ELSI_OBS_METRICS_H_
