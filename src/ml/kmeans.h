#ifndef ELSI_ML_KMEANS_H_
#define ELSI_ML_KMEANS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/geometry.h"

namespace elsi {

struct KMeansOptions {
  int max_iterations = 10;
  /// 0 runs full Lloyd iterations over all points (the paper's
  /// "straightforward implementation"). A positive value switches to
  /// mini-batch k-means (Sculley, 2010) with that batch size, which the CL
  /// build method uses when k * n would make full Lloyd impractical; CL
  /// remains the slowest build method either way (see DESIGN.md).
  size_t batch_size = 0;
  uint64_t seed = 42;
};

struct KMeansResult {
  std::vector<Point> centroids;  // k points; ids are 0..k-1.
  /// Cluster index per input point. Empty in mini-batch mode (assignments
  /// are not materialised there).
  std::vector<uint32_t> assignment;
};

/// Lloyd / mini-batch k-means over 2-D points. `k` is clamped to the number
/// of points; initial centroids are a random sample without replacement.
KMeansResult KMeans(const std::vector<Point>& points, size_t k,
                    const KMeansOptions& options);

}  // namespace elsi

#endif  // ELSI_ML_KMEANS_H_
