#include "ml/dqn.h"

#include <algorithm>

#include "common/logging.h"
#include "common/random.h"

namespace elsi {
namespace {

uint64_t NextRand(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Dqn::Dqn(const DqnConfig& config)
    : config_(config),
      online_(config.state_dim, config.hidden, config.action_count,
              config.seed),
      target_(config.state_dim, config.hidden, config.action_count,
              config.seed),
      rng_state_(config.seed ^ 0xd9f3ULL) {
  ELSI_CHECK_GT(config.state_dim, 0);
  ELSI_CHECK_GT(config.action_count, 0);
  target_.SetParameters(online_.GetParameters());
  replay_.reserve(std::min<size_t>(config.replay_capacity, 4096));
}

int Dqn::BestAction(const std::vector<double>& state) const {
  const std::vector<double> q = online_.Forward(state);
  return static_cast<int>(std::max_element(q.begin(), q.end()) - q.begin());
}

std::vector<double> Dqn::QValues(const std::vector<double>& state) const {
  return online_.Forward(state);
}

int Dqn::SelectAction(const std::vector<double>& state, double epsilon) {
  const double u =
      static_cast<double>(NextRand(&rng_state_) >> 11) * 0x1.0p-53;
  if (u < epsilon) {
    return static_cast<int>(NextRand(&rng_state_) % config_.action_count);
  }
  return BestAction(state);
}

void Dqn::Observe(const std::vector<double>& state, int action, double reward,
                  const std::vector<double>& next_state, bool done) {
  Transition t{state, action, reward, next_state, done};
  if (replay_.size() < config_.replay_capacity) {
    replay_.push_back(std::move(t));
  } else {
    replay_[replay_next_] = std::move(t);
    replay_next_ = (replay_next_ + 1) % config_.replay_capacity;
  }
  ++steps_;
  if (steps_ % config_.train_every == 0 && !replay_.empty()) {
    TrainBatch();
  }
  if (steps_ % config_.target_sync_every == 0) {
    target_.SetParameters(online_.GetParameters());
  }
}

void Dqn::TrainBatch() {
  const size_t batch = std::min(config_.batch_size, replay_.size());
  Matrix x(batch, config_.state_dim);
  std::vector<const Transition*> sampled(batch);
  for (size_t i = 0; i < batch; ++i) {
    sampled[i] = &replay_[NextRand(&rng_state_) % replay_.size()];
    const std::vector<double>& s = sampled[i]->state;
    std::copy(s.begin(), s.end(), x.RowPtr(i));
  }

  // Targets: current online Q with the taken action replaced by the Bellman
  // backup through the target network.
  Matrix y = online_.ForwardBatch(x);
  Matrix next_x(batch, config_.state_dim);
  for (size_t i = 0; i < batch; ++i) {
    const std::vector<double>& s = sampled[i]->next_state;
    std::copy(s.begin(), s.end(), next_x.RowPtr(i));
  }
  const Matrix next_q = target_.ForwardBatch(next_x);
  for (size_t i = 0; i < batch; ++i) {
    double target = sampled[i]->reward;
    if (!sampled[i]->done) {
      double best = next_q.At(i, 0);
      for (int a = 1; a < config_.action_count; ++a) {
        best = std::max(best, next_q.At(i, a));
      }
      target += config_.gamma * best;
    }
    y.At(i, sampled[i]->action) = target;
  }
  online_.TrainStep(x, y, config_.learning_rate);
}

}  // namespace elsi
