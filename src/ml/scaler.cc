#include "ml/scaler.h"

#include <algorithm>

#include "common/logging.h"

namespace elsi {

void MinMaxScaler::Fit(const Matrix& x) {
  ELSI_CHECK_GT(x.rows(), 0u);
  mins_.assign(x.cols(), 0.0);
  inv_ranges_.assign(x.cols(), 0.0);
  for (size_t c = 0; c < x.cols(); ++c) {
    double lo = x.At(0, c);
    double hi = lo;
    for (size_t r = 1; r < x.rows(); ++r) {
      lo = std::min(lo, x.At(r, c));
      hi = std::max(hi, x.At(r, c));
    }
    mins_[c] = lo;
    inv_ranges_[c] = hi > lo ? 1.0 / (hi - lo) : 0.0;
  }
}

void MinMaxScaler::Transform(Matrix* x) const {
  ELSI_CHECK(fitted());
  ELSI_CHECK_EQ(x->cols(), mins_.size());
  for (size_t r = 0; r < x->rows(); ++r) {
    double* row = x->RowPtr(r);
    for (size_t c = 0; c < x->cols(); ++c) {
      row[c] = (row[c] - mins_[c]) * inv_ranges_[c];
    }
  }
}

std::vector<double> MinMaxScaler::Transform(const std::vector<double>& x) const {
  ELSI_CHECK(fitted());
  ELSI_CHECK_EQ(x.size(), mins_.size());
  std::vector<double> out(x.size());
  for (size_t c = 0; c < x.size(); ++c) {
    out[c] = (x[c] - mins_[c]) * inv_ranges_[c];
  }
  return out;
}

}  // namespace elsi
