#ifndef ELSI_ML_FFN_H_
#define ELSI_ML_FFN_H_

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <vector>

#include "ml/matrix.h"

namespace elsi {

/// Output-layer activation. Index models regress ranks (linear); the rebuild
/// predictor classifies (sigmoid).
enum class OutputActivation { kLinear, kSigmoid };

/// Training hyper-parameters. Defaults follow the paper's setup (Sec.
/// VII-B1): ReLU hidden layers, L2 loss, Adam with learning rate 0.01 and
/// 500 epochs. `batch_size` 0 means full-batch.
struct FfnTrainOptions {
  double learning_rate = 0.01;
  int epochs = 500;
  size_t batch_size = 0;
  uint64_t shuffle_seed = 7;
  /// Stop early when the epoch loss improves by less than this relative
  /// amount for `patience` consecutive epochs (0 disables).
  double early_stop_rel_tol = 0.0;
  int patience = 10;
};

/// Preallocated ping-pong buffers for the allocation-free single-example
/// inference path (Ffn::ForwardInto). Grows to the widest layer of whatever
/// networks it is used with and never shrinks, so steady-state queries do no
/// heap work. 64-byte-aligned so the SIMD GEMM's loads never split cache
/// lines. Not thread-safe: use one scratch per thread (Forward/Predict1
/// keep a `thread_local` one internally).
struct InferenceScratch {
  simd::AlignedVector ping;
  simd::AlignedVector pong;
};

/// A dense feed-forward network: Linear -> ReLU -> ... -> Linear
/// [-> Sigmoid]. This is the model class used for every learned component in
/// the repository: index rank models, the method scorer's cost estimators,
/// the rebuild predictor, and the DQN's Q-network.
class Ffn {
 public:
  /// Builds a network with He-initialised weights. `hidden` may be empty
  /// (pure linear model).
  Ffn(int input_dim, const std::vector<int>& hidden, int output_dim,
      uint64_t seed, OutputActivation out_act = OutputActivation::kLinear);

  int input_dim() const { return input_dim_; }
  int output_dim() const { return output_dim_; }

  /// Forward pass for a single example.
  std::vector<double> Forward(const std::vector<double>& x) const;

  /// Convenience for scalar-output networks.
  double Predict1(const std::vector<double>& x) const;

  /// Allocation-free forward pass for a single example: reads `input_dim()`
  /// values from `x`, writes `output_dim()` values to `out`, and uses only
  /// the scratch's preallocated buffers once they have grown to this
  /// network's widest layer. Bit-identical to Forward() and to the matching
  /// row of ForwardBatch() (see the kernel invariant in ml/matrix.h).
  void ForwardInto(const double* x, InferenceScratch* scratch,
                   double* out) const;

  /// Allocation-free batched forward pass: `x` is row-major (n x
  /// input_dim()), `out` is (n x output_dim()). Row i is bit-identical to
  /// ForwardInto(row i) and to ForwardBatch(x) — same GEMM kernels, same
  /// bias-then-activation order — with no Matrix allocations.
  void ForwardBatchInto(const double* x, size_t n, InferenceScratch* scratch,
                        double* out) const;

  /// Predict1 for 1-input scalar networks on the allocation-free path,
  /// using a per-thread scratch. This is the per-query inference hot path.
  double PredictScalar(double x) const;

  /// Batched forward pass; rows are examples. Row i of the result is
  /// bit-identical to Forward(row i).
  Matrix ForwardBatch(const Matrix& x) const;

  /// Trains with mean-squared (L2) loss via Adam. Returns the final epoch's
  /// mean loss. `x` is (n x input_dim), `y` is (n x output_dim).
  double Train(const Matrix& x, const Matrix& y, const FfnTrainOptions& opts);

  /// One Adam step on the given batch; returns batch mean loss. Exposed for
  /// the DQN, which interleaves environment steps with single updates.
  double TrainStep(const Matrix& x, const Matrix& y, double learning_rate);

  /// Flattens all parameters (used to sync the DQN target network and to
  /// store pre-trained models for the MR pool).
  std::vector<double> GetParameters() const;
  void SetParameters(const std::vector<double>& params);

  /// Total parameter count.
  size_t ParameterCount() const;

  /// Hidden-layer widths (reconstructed from the layer shapes).
  std::vector<int> HiddenDims() const;

  /// Writes a portable binary encoding (architecture + parameters,
  /// fixed-width little-endian with a CRC-32) that Load() reads back
  /// bit-exactly. Returns false on stream failure.
  bool Save(std::ostream& out) const;

  /// Reads an encoding written by Save() — the current checksummed binary
  /// format or the legacy "elsi-ffn 1" text format. Returns nullopt on
  /// malformed input. Adam state is not persisted (loaded nets resume
  /// fresh).
  static std::optional<Ffn> Load(std::istream& in);

 private:
  struct Layer {
    Matrix w;                // in x out
    std::vector<double> b;   // out
    // Adam state.
    Matrix mw, vw;
    std::vector<double> mb, vb;
  };

  // Forward keeping the post-ReLU hidden activations for backprop (the
  // input matrix is not copied; the backward pass takes it by reference).
  Matrix ForwardTraining(const Matrix& x, std::vector<Matrix>* hidden) const;
  double BackwardAndStep(const Matrix& x, const std::vector<Matrix>& hidden,
                         const Matrix& output, const Matrix& y, double lr);

  int input_dim_;
  int output_dim_;
  OutputActivation out_act_;
  std::vector<Layer> layers_;
  size_t max_width_ = 0;  // widest layer input/output, for scratch sizing
  int64_t adam_t_ = 0;
};

}  // namespace elsi

#endif  // ELSI_ML_FFN_H_
