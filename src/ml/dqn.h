#ifndef ELSI_ML_DQN_H_
#define ELSI_ML_DQN_H_

#include <cstdint>
#include <vector>

#include "ml/ffn.h"

namespace elsi {

/// Deep Q-network configuration. Defaults mirror the RL build method of the
/// paper (Sec. V-B2): discount 0.9 and a Q-update every five environment
/// steps over the recent replay memory.
struct DqnConfig {
  int state_dim = 0;
  int action_count = 0;
  std::vector<int> hidden = {64};
  double learning_rate = 1e-3;
  double gamma = 0.9;
  size_t replay_capacity = 10000;
  size_t batch_size = 32;
  int train_every = 5;
  int target_sync_every = 50;
  uint64_t seed = 42;
};

/// A compact DQN (Mnih et al., 2013) with an experience-replay ring buffer
/// and a periodically-synchronised target network.
class Dqn {
 public:
  explicit Dqn(const DqnConfig& config);

  /// Epsilon-greedy action selection.
  int SelectAction(const std::vector<double>& state, double epsilon);

  /// Greedy action (no exploration).
  int BestAction(const std::vector<double>& state) const;

  /// Records a transition and trains every `train_every` observations.
  void Observe(const std::vector<double>& state, int action, double reward,
               const std::vector<double>& next_state, bool done);

  /// Q-values for a state (diagnostics/tests).
  std::vector<double> QValues(const std::vector<double>& state) const;

  int64_t steps() const { return steps_; }

 private:
  struct Transition {
    std::vector<double> state;
    int action;
    double reward;
    std::vector<double> next_state;
    bool done;
  };

  void TrainBatch();

  DqnConfig config_;
  Ffn online_;
  Ffn target_;
  std::vector<Transition> replay_;
  size_t replay_next_ = 0;
  int64_t steps_ = 0;
  uint64_t rng_state_;
};

}  // namespace elsi

#endif  // ELSI_ML_DQN_H_
