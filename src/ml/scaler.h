#ifndef ELSI_ML_SCALER_H_
#define ELSI_ML_SCALER_H_

#include <vector>

#include "ml/matrix.h"

namespace elsi {

/// Per-column min-max scaling to [0, 1]. Constant columns map to 0. Learned
/// components fit the scaler on training features and reuse it at inference.
class MinMaxScaler {
 public:
  MinMaxScaler() = default;

  /// Learns column ranges from `x`.
  void Fit(const Matrix& x);

  /// Scales in place. Requires Fit() with matching column count.
  void Transform(Matrix* x) const;

  /// Scales one feature vector.
  std::vector<double> Transform(const std::vector<double>& x) const;

  bool fitted() const { return !mins_.empty(); }

 private:
  std::vector<double> mins_;
  std::vector<double> inv_ranges_;
};

}  // namespace elsi

#endif  // ELSI_ML_SCALER_H_
