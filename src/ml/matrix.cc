#include "ml/matrix.h"

#include "common/logging.h"

namespace elsi {
namespace {

// Register-tile shape. 4x8 keeps the accumulator block plus one B row within
// the 16 SSE2 registers -O2 targets; the dense FFN shapes (hidden width 16,
// batch chunks of hundreds) split into whole tiles almost everywhere.
constexpr size_t kMr = 4;
constexpr size_t kNr = 8;

// C tile = A rows x B cols with ascending-k accumulation. The compile-time
// bounds let the compiler keep `acc` in registers and vectorise the j loop.
template <size_t MR, size_t NR>
inline void KernelNN(const double* a, const double* b, double* c, size_t k,
                     size_t lda, size_t ldb, size_t ldc) {
  double acc[MR][NR] = {};
  for (size_t kk = 0; kk < k; ++kk) {
    const double* brow = b + kk * ldb;
    for (size_t r = 0; r < MR; ++r) {
      const double av = a[r * lda + kk];
      for (size_t j = 0; j < NR; ++j) acc[r][j] += av * brow[j];
    }
  }
  for (size_t r = 0; r < MR; ++r) {
    for (size_t j = 0; j < NR; ++j) c[r * ldc + j] = acc[r][j];
  }
}

// Partial tile, compile-time column count: one row of accumulators at a
// time, with the same per-element ascending-k sums as the full kernel. The
// fixed NR keeps the j loop unrolled/vectorised; NR = 1 degenerates to a
// plain dot product, which matters because the FFN output layer is an
// n = 1 product.
template <size_t NR>
inline void EdgeColsNN(const double* a, const double* b, double* c, size_t mr,
                       size_t k, size_t lda, size_t ldb, size_t ldc) {
  for (size_t r = 0; r < mr; ++r) {
    double acc[NR] = {};
    for (size_t kk = 0; kk < k; ++kk) {
      const double av = a[r * lda + kk];
      const double* brow = b + kk * ldb;
      for (size_t j = 0; j < NR; ++j) acc[j] += av * brow[j];
    }
    for (size_t j = 0; j < NR; ++j) c[r * ldc + j] = acc[j];
  }
}

// Partial tile (mr <= kMr, nr <= kNr): dispatches nr to a compile-time
// specialisation.
inline void EdgeNN(const double* a, const double* b, double* c, size_t mr,
                   size_t nr, size_t k, size_t lda, size_t ldb, size_t ldc) {
  switch (nr) {
    case 1: return EdgeColsNN<1>(a, b, c, mr, k, lda, ldb, ldc);
    case 2: return EdgeColsNN<2>(a, b, c, mr, k, lda, ldb, ldc);
    case 3: return EdgeColsNN<3>(a, b, c, mr, k, lda, ldb, ldc);
    case 4: return EdgeColsNN<4>(a, b, c, mr, k, lda, ldb, ldc);
    case 5: return EdgeColsNN<5>(a, b, c, mr, k, lda, ldb, ldc);
    case 6: return EdgeColsNN<6>(a, b, c, mr, k, lda, ldb, ldc);
    case 7: return EdgeColsNN<7>(a, b, c, mr, k, lda, ldb, ldc);
    default: return EdgeColsNN<kNr>(a, b, c, mr, k, lda, ldb, ldc);
  }
}

// A^T variant: `a` points at column i0 of the (k x m) matrix, so row kk of
// the tile reads a[kk * lda + r] — contiguous in r.
template <size_t MR, size_t NR>
inline void KernelTN(const double* a, const double* b, double* c, size_t k,
                     size_t lda, size_t ldb, size_t ldc) {
  double acc[MR][NR] = {};
  for (size_t kk = 0; kk < k; ++kk) {
    const double* arow = a + kk * lda;
    const double* brow = b + kk * ldb;
    for (size_t r = 0; r < MR; ++r) {
      const double av = arow[r];
      for (size_t j = 0; j < NR; ++j) acc[r][j] += av * brow[j];
    }
  }
  for (size_t r = 0; r < MR; ++r) {
    for (size_t j = 0; j < NR; ++j) c[r * ldc + j] = acc[r][j];
  }
}

template <size_t NR>
inline void EdgeColsTN(const double* a, const double* b, double* c, size_t mr,
                       size_t k, size_t lda, size_t ldb, size_t ldc) {
  for (size_t r = 0; r < mr; ++r) {
    double acc[NR] = {};
    for (size_t kk = 0; kk < k; ++kk) {
      const double av = a[kk * lda + r];
      const double* brow = b + kk * ldb;
      for (size_t j = 0; j < NR; ++j) acc[j] += av * brow[j];
    }
    for (size_t j = 0; j < NR; ++j) c[r * ldc + j] = acc[j];
  }
}

inline void EdgeTN(const double* a, const double* b, double* c, size_t mr,
                   size_t nr, size_t k, size_t lda, size_t ldb, size_t ldc) {
  switch (nr) {
    case 1: return EdgeColsTN<1>(a, b, c, mr, k, lda, ldb, ldc);
    case 2: return EdgeColsTN<2>(a, b, c, mr, k, lda, ldb, ldc);
    case 3: return EdgeColsTN<3>(a, b, c, mr, k, lda, ldb, ldc);
    case 4: return EdgeColsTN<4>(a, b, c, mr, k, lda, ldb, ldc);
    case 5: return EdgeColsTN<5>(a, b, c, mr, k, lda, ldb, ldc);
    case 6: return EdgeColsTN<6>(a, b, c, mr, k, lda, ldb, ldc);
    case 7: return EdgeColsTN<7>(a, b, c, mr, k, lda, ldb, ldc);
    default: return EdgeColsTN<kNr>(a, b, c, mr, k, lda, ldb, ldc);
  }
}

// B^T variant: each output is a dot product of an A row and a B row. The
// 2x4 tile reuses every loaded A value across four B rows.
constexpr size_t kMrNT = 2;
constexpr size_t kNrNT = 4;

template <size_t MR, size_t NR>
inline void KernelNT(const double* a, const double* b, double* c, size_t k,
                     size_t lda, size_t ldb, size_t ldc) {
  double acc[MR][NR] = {};
  for (size_t kk = 0; kk < k; ++kk) {
    for (size_t r = 0; r < MR; ++r) {
      const double av = a[r * lda + kk];
      for (size_t j = 0; j < NR; ++j) acc[r][j] += av * b[j * ldb + kk];
    }
  }
  for (size_t r = 0; r < MR; ++r) {
    for (size_t j = 0; j < NR; ++j) c[r * ldc + j] = acc[r][j];
  }
}

template <size_t NR>
inline void EdgeColsNT(const double* a, const double* b, double* c, size_t mr,
                       size_t k, size_t lda, size_t ldb, size_t ldc) {
  for (size_t r = 0; r < mr; ++r) {
    double acc[NR] = {};
    for (size_t kk = 0; kk < k; ++kk) {
      const double av = a[r * lda + kk];
      for (size_t j = 0; j < NR; ++j) acc[j] += av * b[j * ldb + kk];
    }
    for (size_t j = 0; j < NR; ++j) c[r * ldc + j] = acc[j];
  }
}

inline void EdgeNT(const double* a, const double* b, double* c, size_t mr,
                   size_t nr, size_t k, size_t lda, size_t ldb, size_t ldc) {
  switch (nr) {
    case 1: return EdgeColsNT<1>(a, b, c, mr, k, lda, ldb, ldc);
    case 2: return EdgeColsNT<2>(a, b, c, mr, k, lda, ldb, ldc);
    case 3: return EdgeColsNT<3>(a, b, c, mr, k, lda, ldb, ldc);
    default: return EdgeColsNT<kNrNT>(a, b, c, mr, k, lda, ldb, ldc);
  }
}

}  // namespace

void GemmNN(const double* a, const double* b, double* c, size_t m, size_t k,
            size_t n) {
  // Shape fast paths for the two inference-critical degenerate products.
  // Both keep every output element a plain ascending-k sum, so the kernel
  // invariant (bit-identity with the reference triple loop) still holds.
  if (k == 1) {
    // Rank-1 outer product: one multiply per element, no accumulation. This
    // is the FFN first layer whenever the input is one-dimensional (every
    // rank model), and the tile machinery is pure overhead for it.
    for (size_t i = 0; i < m; ++i) {
      const double av = a[i];
      double* crow = c + i * n;
      for (size_t j = 0; j < n; ++j) crow[j] = av * b[j];
    }
    return;
  }
  if (n == 1) {
    // Matrix-vector: interleave four rows so their (independent, ascending)
    // accumulations overlap instead of serialising on one add chain. This is
    // the FFN output layer for scalar-output networks.
    size_t i = 0;
    for (; i + 4 <= m; i += 4) {
      const double* ar = a + i * k;
      double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
      for (size_t kk = 0; kk < k; ++kk) {
        const double bv = b[kk];
        acc0 += ar[kk] * bv;
        acc1 += ar[k + kk] * bv;
        acc2 += ar[2 * k + kk] * bv;
        acc3 += ar[3 * k + kk] * bv;
      }
      c[i] = acc0;
      c[i + 1] = acc1;
      c[i + 2] = acc2;
      c[i + 3] = acc3;
    }
    for (; i < m; ++i) {
      const double* ar = a + i * k;
      double acc = 0.0;
      for (size_t kk = 0; kk < k; ++kk) acc += ar[kk] * b[kk];
      c[i] = acc;
    }
    return;
  }
  size_t i = 0;
  for (; i + kMr <= m; i += kMr) {
    size_t j = 0;
    for (; j + kNr <= n; j += kNr) {
      KernelNN<kMr, kNr>(a + i * k, b + j, c + i * n + j, k, k, n, n);
    }
    if (j < n) EdgeNN(a + i * k, b + j, c + i * n + j, kMr, n - j, k, k, n, n);
  }
  if (i < m) {
    size_t j = 0;
    for (; j + kNr <= n; j += kNr) {
      EdgeNN(a + i * k, b + j, c + i * n + j, m - i, kNr, k, k, n, n);
    }
    if (j < n) {
      EdgeNN(a + i * k, b + j, c + i * n + j, m - i, n - j, k, k, n, n);
    }
  }
}

void GemmTN(const double* a, const double* b, double* c, size_t m, size_t k,
            size_t n) {
  size_t i = 0;
  for (; i + kMr <= m; i += kMr) {
    size_t j = 0;
    for (; j + kNr <= n; j += kNr) {
      KernelTN<kMr, kNr>(a + i, b + j, c + i * n + j, k, m, n, n);
    }
    if (j < n) EdgeTN(a + i, b + j, c + i * n + j, kMr, n - j, k, m, n, n);
  }
  if (i < m) {
    size_t j = 0;
    for (; j + kNr <= n; j += kNr) {
      EdgeTN(a + i, b + j, c + i * n + j, m - i, kNr, k, m, n, n);
    }
    if (j < n) EdgeTN(a + i, b + j, c + i * n + j, m - i, n - j, k, m, n, n);
  }
}

void GemmNT(const double* a, const double* b, double* c, size_t m, size_t k,
            size_t n) {
  size_t i = 0;
  for (; i + kMrNT <= m; i += kMrNT) {
    size_t j = 0;
    for (; j + kNrNT <= n; j += kNrNT) {
      KernelNT<kMrNT, kNrNT>(a + i * k, b + j * k, c + i * n + j, k, k, k, n);
    }
    if (j < n) {
      EdgeNT(a + i * k, b + j * k, c + i * n + j, kMrNT, n - j, k, k, k, n);
    }
  }
  if (i < m) {
    size_t j = 0;
    for (; j + kNrNT <= n; j += kNrNT) {
      EdgeNT(a + i * k, b + j * k, c + i * n + j, m - i, kNrNT, k, k, k, n);
    }
    if (j < n) {
      EdgeNT(a + i * k, b + j * k, c + i * n + j, m - i, n - j, k, k, k, n);
    }
  }
}

Matrix Matrix::FromRows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(rows.size(), rows[0].size());
  for (size_t r = 0; r < rows.size(); ++r) {
    ELSI_CHECK_EQ(rows[r].size(), m.cols()) << "ragged row " << r;
    for (size_t c = 0; c < m.cols(); ++c) m.At(r, c) = rows[r][c];
  }
  return m;
}

Matrix Matrix::MatMul(const Matrix& rhs) const {
  ELSI_CHECK_EQ(cols_, rhs.rows_);
  Matrix out(rows_, rhs.cols_);
  GemmNN(data_.data(), rhs.data_.data(), out.data_.data(), rows_, cols_,
         rhs.cols_);
  return out;
}

Matrix Matrix::TransposedMatMul(const Matrix& rhs) const {
  ELSI_CHECK_EQ(rows_, rhs.rows_);
  Matrix out(cols_, rhs.cols_);
  GemmTN(data_.data(), rhs.data_.data(), out.data_.data(), cols_, rows_,
         rhs.cols_);
  return out;
}

Matrix Matrix::MatMulTransposed(const Matrix& rhs) const {
  ELSI_CHECK_EQ(cols_, rhs.cols_);
  Matrix out(rows_, rhs.rows_);
  GemmNT(data_.data(), rhs.data_.data(), out.data_.data(), rows_, cols_,
         rhs.rows_);
  return out;
}

void Matrix::AddRowBroadcast(const std::vector<double>& bias) {
  ELSI_CHECK_EQ(bias.size(), cols_);
  for (size_t i = 0; i < rows_; ++i) {
    double* r = RowPtr(i);
    for (size_t c = 0; c < cols_; ++c) r[c] += bias[c];
  }
}

std::vector<double> Matrix::ColumnSums() const {
  std::vector<double> sums(cols_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    const double* r = RowPtr(i);
    for (size_t c = 0; c < cols_; ++c) sums[c] += r[c];
  }
  return sums;
}

}  // namespace elsi
