#include "ml/matrix.h"

#include "common/logging.h"

namespace elsi {

Matrix Matrix::FromRows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(rows.size(), rows[0].size());
  for (size_t r = 0; r < rows.size(); ++r) {
    ELSI_CHECK_EQ(rows[r].size(), m.cols()) << "ragged row " << r;
    for (size_t c = 0; c < m.cols(); ++c) m.At(r, c) = rows[r][c];
  }
  return m;
}

Matrix Matrix::MatMul(const Matrix& rhs) const {
  ELSI_CHECK_EQ(cols_, rhs.rows_);
  Matrix out(rows_, rhs.cols_);
  for (size_t i = 0; i < rows_; ++i) {
    const double* a = RowPtr(i);
    double* o = out.RowPtr(i);
    for (size_t k = 0; k < cols_; ++k) {
      const double aik = a[k];
      if (aik == 0.0) continue;
      const double* b = rhs.RowPtr(k);
      for (size_t j = 0; j < rhs.cols_; ++j) o[j] += aik * b[j];
    }
  }
  return out;
}

Matrix Matrix::TransposedMatMul(const Matrix& rhs) const {
  ELSI_CHECK_EQ(rows_, rhs.rows_);
  Matrix out(cols_, rhs.cols_);
  for (size_t k = 0; k < rows_; ++k) {
    const double* a = RowPtr(k);
    const double* b = rhs.RowPtr(k);
    for (size_t i = 0; i < cols_; ++i) {
      const double aki = a[i];
      if (aki == 0.0) continue;
      double* o = out.RowPtr(i);
      for (size_t j = 0; j < rhs.cols_; ++j) o[j] += aki * b[j];
    }
  }
  return out;
}

Matrix Matrix::MatMulTransposed(const Matrix& rhs) const {
  ELSI_CHECK_EQ(cols_, rhs.cols_);
  Matrix out(rows_, rhs.rows_);
  for (size_t i = 0; i < rows_; ++i) {
    const double* a = RowPtr(i);
    double* o = out.RowPtr(i);
    for (size_t j = 0; j < rhs.rows_; ++j) {
      const double* b = rhs.RowPtr(j);
      double acc = 0.0;
      for (size_t k = 0; k < cols_; ++k) acc += a[k] * b[k];
      o[j] = acc;
    }
  }
  return out;
}

void Matrix::AddRowBroadcast(const std::vector<double>& bias) {
  ELSI_CHECK_EQ(bias.size(), cols_);
  for (size_t i = 0; i < rows_; ++i) {
    double* r = RowPtr(i);
    for (size_t c = 0; c < cols_; ++c) r[c] += bias[c];
  }
}

std::vector<double> Matrix::ColumnSums() const {
  std::vector<double> sums(cols_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    const double* r = RowPtr(i);
    for (size_t c = 0; c < cols_; ++c) sums[c] += r[c];
  }
  return sums;
}

}  // namespace elsi
