#include "ml/matrix.h"

#include "common/logging.h"
#include "simd/simd.h"

namespace elsi {

// The kernels themselves live in src/simd/ (kernels_scalar.cc carries the
// PR 2 register-tiled code verbatim; kernels_avx2/avx512/neon.cc the vector
// variants). These wrappers load the active table once per call and jump.

void GemmNN(const double* a, const double* b, double* c, size_t m, size_t k,
            size_t n) {
  simd::Active().gemm_nn(a, b, c, m, k, n);
}

void GemmTN(const double* a, const double* b, double* c, size_t m, size_t k,
            size_t n) {
  simd::Active().gemm_tn(a, b, c, m, k, n);
}

void GemmNT(const double* a, const double* b, double* c, size_t m, size_t k,
            size_t n) {
  simd::Active().gemm_nt(a, b, c, m, k, n);
}

Matrix Matrix::FromRows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(rows.size(), rows[0].size());
  for (size_t r = 0; r < rows.size(); ++r) {
    ELSI_CHECK_EQ(rows[r].size(), m.cols()) << "ragged row " << r;
    for (size_t c = 0; c < m.cols(); ++c) m.At(r, c) = rows[r][c];
  }
  return m;
}

Matrix Matrix::MatMul(const Matrix& rhs) const {
  ELSI_CHECK_EQ(cols_, rhs.rows_);
  Matrix out(rows_, rhs.cols_);
  GemmNN(data_.data(), rhs.data_.data(), out.data_.data(), rows_, cols_,
         rhs.cols_);
  return out;
}

Matrix Matrix::TransposedMatMul(const Matrix& rhs) const {
  ELSI_CHECK_EQ(rows_, rhs.rows_);
  Matrix out(cols_, rhs.cols_);
  GemmTN(data_.data(), rhs.data_.data(), out.data_.data(), cols_, rows_,
         rhs.cols_);
  return out;
}

Matrix Matrix::MatMulTransposed(const Matrix& rhs) const {
  ELSI_CHECK_EQ(cols_, rhs.cols_);
  Matrix out(rows_, rhs.rows_);
  GemmNT(data_.data(), rhs.data_.data(), out.data_.data(), rows_, cols_,
         rhs.rows_);
  return out;
}

void Matrix::AddRowBroadcast(const std::vector<double>& bias) {
  ELSI_CHECK_EQ(bias.size(), cols_);
  for (size_t i = 0; i < rows_; ++i) {
    double* r = RowPtr(i);
    for (size_t c = 0; c < cols_; ++c) r[c] += bias[c];
  }
}

std::vector<double> Matrix::ColumnSums() const {
  std::vector<double> sums(cols_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    const double* r = RowPtr(i);
    for (size_t c = 0; c < cols_; ++c) sums[c] += r[c];
  }
  return sums;
}

}  // namespace elsi
