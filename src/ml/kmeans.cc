#include "ml/kmeans.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/logging.h"
#include "common/random.h"

namespace elsi {
namespace {

// Index of the centroid closest to p (linear scan; d = 2).
size_t Nearest(const std::vector<Point>& centroids, const Point& p) {
  size_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (size_t c = 0; c < centroids.size(); ++c) {
    const double d = SquaredDistance(centroids[c], p);
    if (d < best_d) {
      best_d = d;
      best = c;
    }
  }
  return best;
}

std::vector<Point> InitCentroids(const std::vector<Point>& points, size_t k,
                                 Rng* rng) {
  // k-means++ (D^2) seeding on a bounded sample: spreads the initial
  // centroids across the clusters so no blob is left unclaimed, while
  // keeping the O(k * sample) cost independent of |points|.
  const size_t sample_size = std::min(points.size(), std::max<size_t>(2 * k,
                                                                      20000));
  std::vector<Point> sample;
  sample.reserve(sample_size);
  if (sample_size == points.size()) {
    sample = points;
  } else {
    for (size_t i = 0; i < sample_size; ++i) {
      sample.push_back(points[rng->NextBelow(points.size())]);
    }
  }

  std::vector<Point> centroids;
  centroids.reserve(k);
  Point first = sample[rng->NextBelow(sample.size())];
  first.id = 0;
  centroids.push_back(first);
  std::vector<double> d2(sample.size());
  double total = 0.0;
  for (size_t i = 0; i < sample.size(); ++i) {
    d2[i] = SquaredDistance(sample[i], centroids[0]);
    total += d2[i];
  }
  while (centroids.size() < k) {
    Point next;
    if (total <= 0.0) {
      next = sample[rng->NextBelow(sample.size())];
    } else {
      double target = rng->NextDouble() * total;
      size_t pick = sample.size() - 1;
      for (size_t i = 0; i < sample.size(); ++i) {
        target -= d2[i];
        if (target <= 0.0) {
          pick = i;
          break;
        }
      }
      next = sample[pick];
    }
    next.id = centroids.size();
    centroids.push_back(next);
    for (size_t i = 0; i < sample.size(); ++i) {
      const double d = SquaredDistance(sample[i], next);
      if (d < d2[i]) {
        total -= d2[i] - d;
        d2[i] = d;
      }
    }
  }
  return centroids;
}

}  // namespace

KMeansResult KMeans(const std::vector<Point>& points, size_t k,
                    const KMeansOptions& options) {
  ELSI_CHECK(!points.empty());
  k = std::min(k, points.size());
  ELSI_CHECK_GT(k, 0u);
  Rng rng(options.seed);

  KMeansResult result;
  result.centroids = InitCentroids(points, k, &rng);

  if (options.batch_size > 0 && options.batch_size < points.size()) {
    // Mini-batch k-means: per-centroid counts give a decaying step size.
    std::vector<size_t> counts(k, 1);
    for (int iter = 0; iter < options.max_iterations; ++iter) {
      for (size_t b = 0; b < options.batch_size; ++b) {
        const Point& p = points[rng.NextBelow(points.size())];
        const size_t c = Nearest(result.centroids, p);
        const double eta = 1.0 / static_cast<double>(++counts[c]);
        result.centroids[c].x += eta * (p.x - result.centroids[c].x);
        result.centroids[c].y += eta * (p.y - result.centroids[c].y);
      }
    }
    return result;
  }

  // Full Lloyd iterations.
  result.assignment.assign(points.size(), 0);
  std::vector<double> sum_x(k), sum_y(k);
  std::vector<size_t> counts(k);
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    bool changed = false;
    std::fill(sum_x.begin(), sum_x.end(), 0.0);
    std::fill(sum_y.begin(), sum_y.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0u);
    for (size_t i = 0; i < points.size(); ++i) {
      const uint32_t c = static_cast<uint32_t>(Nearest(result.centroids,
                                                       points[i]));
      if (c != result.assignment[i]) {
        result.assignment[i] = c;
        changed = true;
      }
      sum_x[c] += points[i].x;
      sum_y[c] += points[i].y;
      ++counts[c];
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster from a random point to keep k centroids.
        const Point& p = points[rng.NextBelow(points.size())];
        result.centroids[c].x = p.x;
        result.centroids[c].y = p.y;
        continue;
      }
      result.centroids[c].x = sum_x[c] / counts[c];
      result.centroids[c].y = sum_y[c] / counts[c];
    }
    if (!changed && iter > 0) break;
  }
  return result;
}

}  // namespace elsi
