#ifndef ELSI_ML_RANDOM_FOREST_H_
#define ELSI_ML_RANDOM_FOREST_H_

#include <cstdint>
#include <vector>

#include "ml/decision_tree.h"
#include "ml/matrix.h"

namespace elsi {

struct RandomForestOptions {
  int num_trees = 30;
  int max_depth = 8;
  size_t min_samples_leaf = 2;
  /// 0 picks ceil(sqrt(d)) features per split.
  int max_features = 0;
  uint64_t seed = 42;
};

/// Bagged CART ensemble: bootstrap-resampled trees with per-split feature
/// subsampling. Regression averages tree outputs; classification takes the
/// majority vote. These are the RFR/RFC baselines of Fig. 6(b).
class RandomForest {
 public:
  using Task = DecisionTree::Task;

  RandomForest() = default;

  void Fit(const Matrix& x, const std::vector<double>& y, Task task,
           const RandomForestOptions& options = {});

  double Predict(const std::vector<double>& x) const;

  bool fitted() const { return !trees_.empty(); }

 private:
  std::vector<DecisionTree> trees_;
  Task task_ = Task::kRegression;
};

}  // namespace elsi

#endif  // ELSI_ML_RANDOM_FOREST_H_
