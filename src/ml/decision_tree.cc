#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/logging.h"
#include "common/random.h"

namespace elsi {
namespace {

// Small local PRNG step (SplitMix64) for feature subsampling.
uint64_t NextRand(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double MajorityLabel(const std::vector<double>& y,
                     const std::vector<size_t>& indices, size_t begin,
                     size_t end, size_t num_classes) {
  std::vector<size_t> counts(num_classes, 0);
  for (size_t i = begin; i < end; ++i) {
    ++counts[static_cast<size_t>(y[indices[i]])];
  }
  return static_cast<double>(
      std::max_element(counts.begin(), counts.end()) - counts.begin());
}

double Mean(const std::vector<double>& y, const std::vector<size_t>& indices,
            size_t begin, size_t end) {
  double sum = 0.0;
  for (size_t i = begin; i < end; ++i) sum += y[indices[i]];
  return sum / static_cast<double>(end - begin);
}

}  // namespace

void DecisionTree::Fit(const Matrix& x, const std::vector<double>& y,
                       Task task, const DecisionTreeOptions& options) {
  ELSI_CHECK_EQ(x.rows(), y.size());
  ELSI_CHECK_GT(x.rows(), 0u);
  nodes_.clear();
  std::vector<size_t> indices(x.rows());
  std::iota(indices.begin(), indices.end(), 0);
  uint64_t rng_state = options.seed;
  BuildNode(x, y, indices, 0, indices.size(), 0, options, task, &rng_state);
}

int DecisionTree::BuildNode(const Matrix& x, const std::vector<double>& y,
                            std::vector<size_t>& indices, size_t begin,
                            size_t end, int depth,
                            const DecisionTreeOptions& options, Task task,
                            uint64_t* rng_state) {
  const size_t n = end - begin;
  const int node_id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();

  size_t num_classes = 0;
  if (task == Task::kClassification) {
    double max_label = 0.0;
    for (size_t i = begin; i < end; ++i) {
      ELSI_DCHECK(y[indices[i]] >= 0.0);
      max_label = std::max(max_label, y[indices[i]]);
    }
    num_classes = static_cast<size_t>(max_label) + 1;
  }

  const double leaf_value =
      task == Task::kRegression
          ? Mean(y, indices, begin, end)
          : MajorityLabel(y, indices, begin, end, num_classes);
  nodes_[node_id].value = leaf_value;

  // Purity check.
  bool pure = true;
  for (size_t i = begin + 1; i < end && pure; ++i) {
    pure = (y[indices[i]] == y[indices[begin]]);
  }
  if (pure || depth >= options.max_depth ||
      n < 2 * options.min_samples_leaf) {
    return node_id;
  }

  // Candidate features (all, or a uniform subset for forests).
  const int d = static_cast<int>(x.cols());
  std::vector<int> features(d);
  std::iota(features.begin(), features.end(), 0);
  int num_features = d;
  if (options.max_features > 0 && options.max_features < d) {
    for (int i = 0; i < options.max_features; ++i) {
      const int j = i + static_cast<int>(NextRand(rng_state) % (d - i));
      std::swap(features[i], features[j]);
    }
    num_features = options.max_features;
  }

  double best_score = -std::numeric_limits<double>::infinity();
  int best_feature = -1;
  double best_threshold = 0.0;

  std::vector<size_t> sorted(indices.begin() + begin, indices.begin() + end);
  for (int fi = 0; fi < num_features; ++fi) {
    const int f = features[fi];
    std::sort(sorted.begin(), sorted.end(), [&](size_t a, size_t b) {
      return x.At(a, f) < x.At(b, f);
    });

    if (task == Task::kRegression) {
      // Variance reduction via running sums.
      double total = 0.0;
      for (size_t idx : sorted) total += y[idx];
      double left_sum = 0.0;
      for (size_t i = 0; i + 1 < n; ++i) {
        left_sum += y[sorted[i]];
        const double v = x.At(sorted[i], f);
        const double v_next = x.At(sorted[i + 1], f);
        if (v == v_next) continue;
        const size_t nl = i + 1;
        const size_t nr = n - nl;
        if (nl < options.min_samples_leaf || nr < options.min_samples_leaf) {
          continue;
        }
        const double right_sum = total - left_sum;
        // Maximising sum-of-squared-means is equivalent to minimising the
        // within-split squared error.
        const double score =
            left_sum * left_sum / nl + right_sum * right_sum / nr;
        if (score > best_score) {
          best_score = score;
          best_feature = f;
          best_threshold = (v + v_next) / 2.0;
        }
      }
    } else {
      std::vector<double> left_counts(num_classes, 0.0);
      std::vector<double> total_counts(num_classes, 0.0);
      for (size_t idx : sorted) {
        total_counts[static_cast<size_t>(y[idx])] += 1.0;
      }
      for (size_t i = 0; i + 1 < n; ++i) {
        left_counts[static_cast<size_t>(y[sorted[i]])] += 1.0;
        const double v = x.At(sorted[i], f);
        const double v_next = x.At(sorted[i + 1], f);
        if (v == v_next) continue;
        const size_t nl = i + 1;
        const size_t nr = n - nl;
        if (nl < options.min_samples_leaf || nr < options.min_samples_leaf) {
          continue;
        }
        // Negative weighted Gini (higher is better).
        double gini_l = 1.0;
        double gini_r = 1.0;
        for (size_t c = 0; c < num_classes; ++c) {
          const double pl = left_counts[c] / nl;
          const double pr = (total_counts[c] - left_counts[c]) / nr;
          gini_l -= pl * pl;
          gini_r -= pr * pr;
        }
        const double score = -(nl * gini_l + nr * gini_r);
        if (score > best_score) {
          best_score = score;
          best_feature = f;
          best_threshold = (v + v_next) / 2.0;
        }
      }
    }
  }

  if (best_feature < 0) return node_id;  // No valid split found.

  // Stable partition of the node's index range around the threshold.
  const auto mid = std::stable_partition(
      indices.begin() + begin, indices.begin() + end, [&](size_t idx) {
        return x.At(idx, best_feature) <= best_threshold;
      });
  const size_t split = static_cast<size_t>(mid - indices.begin());
  if (split == begin || split == end) return node_id;  // Degenerate.

  nodes_[node_id].feature = best_feature;
  nodes_[node_id].threshold = best_threshold;
  const int left = BuildNode(x, y, indices, begin, split, depth + 1, options,
                             task, rng_state);
  const int right = BuildNode(x, y, indices, split, end, depth + 1, options,
                              task, rng_state);
  nodes_[node_id].left = left;
  nodes_[node_id].right = right;
  return node_id;
}

double DecisionTree::Predict(const std::vector<double>& x) const {
  ELSI_CHECK(fitted());
  int node = 0;
  for (;;) {
    const Node& nd = nodes_[node];
    if (nd.feature < 0) return nd.value;
    node = x[nd.feature] <= nd.threshold ? nd.left : nd.right;
  }
}

}  // namespace elsi
