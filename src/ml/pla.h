#ifndef ELSI_ML_PLA_H_
#define ELSI_ML_PLA_H_

#include <cstddef>
#include <vector>

namespace elsi {

namespace persist {
class Writer;
class Reader;
}  // namespace persist

/// Optimal-in-passes piecewise linear approximation of a monotone (key ->
/// rank) mapping with a provable error bound, via the shrinking-cone
/// algorithm used by PGM/FITing-tree-style indices. The paper's conclusion
/// names PGM-style models with theoretical query error bounds as future
/// work for learned spatial indices; this backend realises that extension:
/// a RankModel built on a PLA has |predicted rank - true rank| <= epsilon
/// *by construction* over its training keys, instead of empirically
/// measured bounds.
class PiecewiseLinearModel {
 public:
  PiecewiseLinearModel() = default;

  /// Fits segments over (sorted_keys[i] -> i) such that every training key's
  /// predicted position deviates by at most `epsilon` positions. Duplicate
  /// keys collapse onto one position (their first occurrence), so the bound
  /// holds for the first instance of each distinct key.
  void Fit(const std::vector<double>& sorted_keys, double epsilon);

  bool fitted() const { return !segments_.empty(); }
  size_t segment_count() const { return segments_.size(); }
  double epsilon() const { return epsilon_; }

  /// Predicted (fractional, clamped) position of `key` in [0, n-1].
  double PredictPosition(double key) const;

  /// Training-set size the model was fitted on.
  size_t n() const { return n_; }

  /// Serializes the fitted model (segments, epsilon, n) into `w`.
  void SavePersist(persist::Writer& w) const;

  /// Restores a model written by SavePersist. Returns false on malformed
  /// input.
  bool LoadPersist(persist::Reader& r);

 private:
  struct Segment {
    double start_key;
    double slope;
    double intercept;  // Predicted position at start_key.
  };

  std::vector<Segment> segments_;
  double epsilon_ = 0.0;
  size_t n_ = 0;
};

}  // namespace elsi

#endif  // ELSI_ML_PLA_H_
