#include "ml/random_forest.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/logging.h"
#include "common/random.h"

namespace elsi {

void RandomForest::Fit(const Matrix& x, const std::vector<double>& y,
                       Task task, const RandomForestOptions& options) {
  ELSI_CHECK_EQ(x.rows(), y.size());
  ELSI_CHECK_GT(options.num_trees, 0);
  task_ = task;
  trees_.clear();
  trees_.resize(options.num_trees);

  const int d = static_cast<int>(x.cols());
  DecisionTreeOptions tree_opts;
  tree_opts.max_depth = options.max_depth;
  tree_opts.min_samples_leaf = options.min_samples_leaf;
  tree_opts.max_features =
      options.max_features > 0
          ? options.max_features
          : static_cast<int>(std::ceil(std::sqrt(static_cast<double>(d))));

  Rng rng(options.seed);
  const size_t n = x.rows();
  for (int t = 0; t < options.num_trees; ++t) {
    // Bootstrap resample.
    Matrix bx(n, x.cols());
    std::vector<double> by(n);
    for (size_t i = 0; i < n; ++i) {
      const size_t src = rng.NextBelow(n);
      std::copy(x.RowPtr(src), x.RowPtr(src) + x.cols(), bx.RowPtr(i));
      by[i] = y[src];
    }
    tree_opts.seed = rng.NextUint64();
    trees_[t].Fit(bx, by, task, tree_opts);
  }
}

double RandomForest::Predict(const std::vector<double>& x) const {
  ELSI_CHECK(fitted());
  if (task_ == Task::kRegression) {
    double sum = 0.0;
    for (const DecisionTree& tree : trees_) sum += tree.Predict(x);
    return sum / static_cast<double>(trees_.size());
  }
  std::map<double, int> votes;
  for (const DecisionTree& tree : trees_) ++votes[tree.Predict(x)];
  double best_label = 0.0;
  int best_count = -1;
  for (const auto& [label, count] : votes) {
    if (count > best_count) {
      best_count = count;
      best_label = label;
    }
  }
  return best_label;
}

}  // namespace elsi
