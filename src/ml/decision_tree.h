#ifndef ELSI_ML_DECISION_TREE_H_
#define ELSI_ML_DECISION_TREE_H_

#include <cstdint>
#include <vector>

#include "ml/matrix.h"

namespace elsi {

/// CART options. `max_features` 0 considers every feature at each split;
/// a positive value samples that many features uniformly per split (used by
/// the random forest).
struct DecisionTreeOptions {
  int max_depth = 8;
  size_t min_samples_leaf = 2;
  int max_features = 0;
  uint64_t seed = 42;
};

/// CART decision tree supporting both regression (variance reduction,
/// mean-valued leaves) and classification (Gini impurity, majority leaves).
/// These are the DTR/DTC baselines of Fig. 6(b) and the base learner of the
/// random forest.
class DecisionTree {
 public:
  enum class Task { kRegression, kClassification };

  DecisionTree() = default;

  /// Fits on feature matrix `x` (n x d) and targets `y` (length n). For
  /// classification, targets must be non-negative integer class ids stored
  /// as doubles.
  void Fit(const Matrix& x, const std::vector<double>& y, Task task,
           const DecisionTreeOptions& options = {});

  /// Predicted mean (regression) or class id (classification).
  double Predict(const std::vector<double>& x) const;

  bool fitted() const { return !nodes_.empty(); }
  size_t node_count() const { return nodes_.size(); }

 private:
  struct Node {
    int feature = -1;  // -1 marks a leaf.
    double threshold = 0.0;
    double value = 0.0;  // Leaf prediction.
    int left = -1;
    int right = -1;
  };

  int BuildNode(const Matrix& x, const std::vector<double>& y,
                std::vector<size_t>& indices, size_t begin, size_t end,
                int depth, const DecisionTreeOptions& options, Task task,
                uint64_t* rng_state);

  std::vector<Node> nodes_;
};

}  // namespace elsi

#endif  // ELSI_ML_DECISION_TREE_H_
