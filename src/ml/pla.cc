#include "ml/pla.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"
#include "persist/io.h"

namespace elsi {

void PiecewiseLinearModel::Fit(const std::vector<double>& sorted_keys,
                               double epsilon) {
  ELSI_CHECK(!sorted_keys.empty());
  ELSI_CHECK_GE(epsilon, 0.0);
  ELSI_DCHECK(std::is_sorted(sorted_keys.begin(), sorted_keys.end()));
  segments_.clear();
  epsilon_ = epsilon;
  n_ = sorted_keys.size();

  // Shrinking cone: a segment anchored at (origin_key, origin_pos) stays
  // feasible while some slope in [slope_lo, slope_hi] puts every point of
  // the segment within +-epsilon positions.
  double origin_key = sorted_keys[0];
  double origin_pos = 0.0;
  double slope_lo = 0.0;
  double slope_hi = std::numeric_limits<double>::infinity();

  auto close_segment = [&]() {
    const double slope =
        slope_hi == std::numeric_limits<double>::infinity()
            ? slope_lo
            : (slope_lo + slope_hi) / 2.0;
    segments_.push_back({origin_key, slope, origin_pos});
  };

  double prev_key = origin_key;
  for (size_t i = 1; i < n_; ++i) {
    const double key = sorted_keys[i];
    // Only the first instance of each distinct key constrains the cone; a
    // single x cannot satisfy several target positions, so later duplicates
    // are found through the error-bound scan window instead.
    if (key == prev_key) continue;
    prev_key = key;
    const double dx = key - origin_key;
    const double hi = (static_cast<double>(i) + epsilon - origin_pos) / dx;
    const double lo = (static_cast<double>(i) - epsilon - origin_pos) / dx;
    const double new_lo = std::max(slope_lo, lo);
    const double new_hi = std::min(slope_hi, hi);
    if (new_lo <= new_hi) {
      slope_lo = new_lo;
      slope_hi = new_hi;
      continue;
    }
    // Cone collapsed: emit the segment and restart at this point.
    close_segment();
    origin_key = key;
    origin_pos = static_cast<double>(i);
    slope_lo = 0.0;
    slope_hi = std::numeric_limits<double>::infinity();
  }
  close_segment();
}

double PiecewiseLinearModel::PredictPosition(double key) const {
  ELSI_DCHECK(fitted());
  // Last segment whose start key is <= key.
  size_t lo = 0;
  size_t hi = segments_.size();
  while (lo + 1 < hi) {
    const size_t mid = (lo + hi) / 2;
    if (segments_[mid].start_key <= key) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const Segment& s = segments_[lo];
  const double pos = s.intercept + s.slope * (key - s.start_key);
  return std::clamp(pos, 0.0, static_cast<double>(n_ - 1));
}

void PiecewiseLinearModel::SavePersist(persist::Writer& w) const {
  w.F64(epsilon_);
  w.U64(n_);
  w.U32(static_cast<uint32_t>(segments_.size()));
  for (const Segment& s : segments_) {
    w.F64(s.start_key);
    w.F64(s.slope);
    w.F64(s.intercept);
  }
}

bool PiecewiseLinearModel::LoadPersist(persist::Reader& r) {
  epsilon_ = r.F64();
  n_ = r.U64();
  const uint32_t count = r.U32();
  if (count > r.remaining() / 24) return r.Fail();  // 3 f64 per segment.
  segments_.resize(count);
  for (Segment& s : segments_) {
    s.start_key = r.F64();
    s.slope = r.F64();
    s.intercept = r.F64();
  }
  return r.ok();
}

}  // namespace elsi
