#include "ml/ffn.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <istream>
#include <numeric>
#include <ostream>
#include <string>

#include "common/logging.h"
#include "common/random.h"
#include "persist/io.h"
#include "simd/simd.h"

namespace elsi {
namespace {

constexpr double kAdamBeta1 = 0.9;
constexpr double kAdamBeta2 = 0.999;
constexpr double kAdamEps = 1e-8;

double Sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }

}  // namespace

Ffn::Ffn(int input_dim, const std::vector<int>& hidden, int output_dim,
         uint64_t seed, OutputActivation out_act)
    : input_dim_(input_dim), output_dim_(output_dim), out_act_(out_act) {
  ELSI_CHECK_GT(input_dim, 0);
  ELSI_CHECK_GT(output_dim, 0);
  Rng rng(seed);
  std::vector<int> dims;
  dims.push_back(input_dim);
  for (int h : hidden) {
    ELSI_CHECK_GT(h, 0);
    dims.push_back(h);
  }
  dims.push_back(output_dim);
  layers_.resize(dims.size() - 1);
  for (size_t l = 0; l < layers_.size(); ++l) {
    const int in = dims[l];
    const int out = dims[l + 1];
    Layer& layer = layers_[l];
    layer.w = Matrix(in, out);
    layer.b.assign(out, 0.0);
    const double scale = std::sqrt(2.0 / in);  // He initialisation for ReLU.
    for (size_t i = 0; i < layer.w.data().size(); ++i) {
      layer.w.data()[i] = rng.NextGaussian() * scale;
    }
    layer.mw = Matrix(in, out);
    layer.vw = Matrix(in, out);
    layer.mb.assign(out, 0.0);
    layer.vb.assign(out, 0.0);
  }
  for (int d : dims) {
    max_width_ = std::max(max_width_, static_cast<size_t>(d));
  }
}

Matrix Ffn::ForwardTraining(const Matrix& x,
                            std::vector<Matrix>* hidden) const {
  ELSI_CHECK_EQ(x.cols(), static_cast<size_t>(input_dim_));
  if (hidden != nullptr) {
    hidden->clear();
    // Reserve so &hidden->back() stays valid while `a` points into it.
    hidden->reserve(layers_.size() - 1);
  }
  const Matrix* a = &x;
  Matrix out;
  for (size_t l = 0; l < layers_.size(); ++l) {
    Matrix z = a->MatMul(layers_[l].w);
    z.AddRowBroadcast(layers_[l].b);
    if (l + 1 < layers_.size()) {
      for (double& v : z.data()) v = v > 0.0 ? v : 0.0;  // ReLU.
      if (hidden != nullptr) {
        hidden->push_back(std::move(z));
        a = &hidden->back();
      } else {
        out = std::move(z);
        a = &out;
      }
    } else {
      if (out_act_ == OutputActivation::kSigmoid) {
        for (double& v : z.data()) v = Sigmoid(v);
      }
      out = std::move(z);
    }
  }
  return out;
}

Matrix Ffn::ForwardBatch(const Matrix& x) const {
  return ForwardTraining(x, nullptr);
}

void Ffn::ForwardInto(const double* x, InferenceScratch* scratch,
                      double* out) const {
  ForwardBatchInto(x, 1, scratch, out);
}

void Ffn::ForwardBatchInto(const double* x, size_t n,
                           InferenceScratch* scratch, double* out) const {
  if (n == 0) return;
  const size_t cap = n * max_width_;
  if (scratch->ping.size() < cap) scratch->ping.resize(cap);
  if (scratch->pong.size() < cap) scratch->pong.resize(cap);
  const double* a = x;
  size_t in_dim = static_cast<size_t>(input_dim_);
  for (size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    const size_t out_dim = layer.w.cols();
    const bool last = l + 1 == layers_.size();
    double* z = last ? out
                     : ((l & 1) == 0 ? scratch->ping : scratch->pong).data();
    // Same element order as the Matrix path: ascending-k GEMM, then the
    // row-broadcast bias, then the activation. Bias and ReLU go through
    // the dispatched kernels too (both are bit-identical to the scalar
    // loops on every level — single adds and a compare+select).
    const simd::Kernels& kern = simd::Active();
    kern.gemm_nn(a, layer.w.data().data(), z, n, in_dim, out_dim);
    if (!last) {
      kern.bias_relu(z, layer.b.data(), n, out_dim);
    } else {
      kern.bias(z, layer.b.data(), n, out_dim);
      if (out_act_ == OutputActivation::kSigmoid) {
        const size_t total = n * out_dim;
        for (size_t i = 0; i < total; ++i) z[i] = Sigmoid(z[i]);
      }
    }
    a = z;
    in_dim = out_dim;
  }
}

double Ffn::PredictScalar(double x) const {
  ELSI_CHECK_EQ(input_dim_, 1);
  ELSI_CHECK_EQ(output_dim_, 1);
  static thread_local InferenceScratch scratch;
  double out = 0.0;
  ForwardInto(&x, &scratch, &out);
  return out;
}

std::vector<double> Ffn::Forward(const std::vector<double>& x) const {
  ELSI_CHECK_EQ(x.size(), static_cast<size_t>(input_dim_));
  static thread_local InferenceScratch scratch;
  std::vector<double> out(static_cast<size_t>(output_dim_));
  ForwardInto(x.data(), &scratch, out.data());
  return out;
}

double Ffn::Predict1(const std::vector<double>& x) const {
  ELSI_CHECK_EQ(output_dim_, 1);
  return Forward(x)[0];
}

double Ffn::BackwardAndStep(const Matrix& x, const std::vector<Matrix>& hidden,
                            const Matrix& output, const Matrix& y, double lr) {
  const size_t n = output.rows();
  ELSI_CHECK_EQ(y.rows(), n);
  ELSI_CHECK_EQ(y.cols(), output.cols());

  // L2 loss: mean over examples of the squared error summed over outputs.
  double loss = 0.0;
  Matrix delta(n, output.cols());
  for (size_t i = 0; i < output.data().size(); ++i) {
    const double diff = output.data()[i] - y.data()[i];
    loss += diff * diff;
    delta.data()[i] = 2.0 * diff / static_cast<double>(n);
  }
  loss /= static_cast<double>(n);

  if (out_act_ == OutputActivation::kSigmoid) {
    for (size_t i = 0; i < delta.data().size(); ++i) {
      const double a = output.data()[i];
      delta.data()[i] *= a * (1.0 - a);
    }
  }

  ++adam_t_;
  const double bc1 = 1.0 - std::pow(kAdamBeta1, static_cast<double>(adam_t_));
  const double bc2 = 1.0 - std::pow(kAdamBeta2, static_cast<double>(adam_t_));

  for (size_t l = layers_.size(); l-- > 0;) {
    Layer& layer = layers_[l];
    const Matrix& a_in = l == 0 ? x : hidden[l - 1];
    const Matrix gw = a_in.TransposedMatMul(delta);
    const std::vector<double> gb = delta.ColumnSums();

    if (l > 0) {
      Matrix next_delta = delta.MatMulTransposed(layer.w);
      // ReLU derivative via the stored post-activation values.
      const Matrix& a_prev = hidden[l - 1];
      ELSI_CHECK_EQ(next_delta.data().size(), a_prev.data().size());
      for (size_t i = 0; i < next_delta.data().size(); ++i) {
        if (a_prev.data()[i] <= 0.0) next_delta.data()[i] = 0.0;
      }
      delta = std::move(next_delta);
    }

    for (size_t i = 0; i < layer.w.data().size(); ++i) {
      double& m = layer.mw.data()[i];
      double& v = layer.vw.data()[i];
      const double g = gw.data()[i];
      m = kAdamBeta1 * m + (1.0 - kAdamBeta1) * g;
      v = kAdamBeta2 * v + (1.0 - kAdamBeta2) * g * g;
      layer.w.data()[i] -= lr * (m / bc1) / (std::sqrt(v / bc2) + kAdamEps);
    }
    for (size_t i = 0; i < layer.b.size(); ++i) {
      double& m = layer.mb[i];
      double& v = layer.vb[i];
      const double g = gb[i];
      m = kAdamBeta1 * m + (1.0 - kAdamBeta1) * g;
      v = kAdamBeta2 * v + (1.0 - kAdamBeta2) * g * g;
      layer.b[i] -= lr * (m / bc1) / (std::sqrt(v / bc2) + kAdamEps);
    }
  }
  return loss;
}

double Ffn::TrainStep(const Matrix& x, const Matrix& y, double learning_rate) {
  std::vector<Matrix> hidden;
  const Matrix output = ForwardTraining(x, &hidden);
  return BackwardAndStep(x, hidden, output, y, learning_rate);
}

double Ffn::Train(const Matrix& x, const Matrix& y,
                  const FfnTrainOptions& opts) {
  ELSI_CHECK_EQ(x.rows(), y.rows());
  ELSI_CHECK_GT(x.rows(), 0u);
  const size_t n = x.rows();
  const size_t batch = opts.batch_size == 0 ? n : std::min(opts.batch_size, n);

  Rng rng(opts.shuffle_seed);
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);

  double last_loss = 0.0;
  double best_loss = std::numeric_limits<double>::infinity();
  int stall = 0;
  for (int epoch = 0; epoch < opts.epochs; ++epoch) {
    double epoch_loss = 0.0;
    size_t batches = 0;
    if (batch == n) {
      epoch_loss = TrainStep(x, y, opts.learning_rate);
      batches = 1;
    } else {
      // Fisher-Yates shuffle, then sequential mini-batches.
      for (size_t i = n - 1; i > 0; --i) {
        std::swap(order[i], order[rng.NextBelow(i + 1)]);
      }
      for (size_t start = 0; start < n; start += batch) {
        const size_t len = std::min(batch, n - start);
        Matrix bx(len, x.cols());
        Matrix by(len, y.cols());
        for (size_t r = 0; r < len; ++r) {
          const size_t src = order[start + r];
          std::copy(x.RowPtr(src), x.RowPtr(src) + x.cols(), bx.RowPtr(r));
          std::copy(y.RowPtr(src), y.RowPtr(src) + y.cols(), by.RowPtr(r));
        }
        epoch_loss += TrainStep(bx, by, opts.learning_rate);
        ++batches;
      }
    }
    last_loss = epoch_loss / static_cast<double>(batches);
    if (opts.early_stop_rel_tol > 0.0) {
      if (last_loss < best_loss * (1.0 - opts.early_stop_rel_tol)) {
        best_loss = last_loss;
        stall = 0;
      } else if (++stall >= opts.patience) {
        break;
      }
    }
  }
  return last_loss;
}

std::vector<double> Ffn::GetParameters() const {
  std::vector<double> params;
  params.reserve(ParameterCount());
  for (const Layer& layer : layers_) {
    params.insert(params.end(), layer.w.data().begin(), layer.w.data().end());
    params.insert(params.end(), layer.b.begin(), layer.b.end());
  }
  return params;
}

void Ffn::SetParameters(const std::vector<double>& params) {
  ELSI_CHECK_EQ(params.size(), ParameterCount());
  size_t pos = 0;
  for (Layer& layer : layers_) {
    std::copy(params.begin() + pos, params.begin() + pos + layer.w.data().size(),
              layer.w.data().begin());
    pos += layer.w.data().size();
    std::copy(params.begin() + pos, params.begin() + pos + layer.b.size(),
              layer.b.begin());
    pos += layer.b.size();
  }
}

size_t Ffn::ParameterCount() const {
  size_t count = 0;
  for (const Layer& layer : layers_) {
    count += layer.w.data().size() + layer.b.size();
  }
  return count;
}

std::vector<int> Ffn::HiddenDims() const {
  std::vector<int> hidden;
  for (size_t l = 0; l + 1 < layers_.size(); ++l) {
    hidden.push_back(static_cast<int>(layers_[l].w.cols()));
  }
  return hidden;
}

namespace {

// Binary format v2: 4-byte magic, u32 CRC-32 of the payload, u64 payload
// length, payload (all fields fixed-width little-endian via persist/io.h).
// v1 was a text encoding starting with "elsi-ffn"; Load() still reads it.
constexpr char kFfnMagic[4] = {'E', 'F', 'N', '2'};
constexpr uint64_t kFfnMaxPayload = 1ull << 31;

std::optional<Ffn> LoadFfnTextV1(std::istream& in) {
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != "elsi-ffn" || version != 1) {
    return std::nullopt;
  }
  int input_dim = 0;
  int output_dim = 0;
  int sigmoid = 0;
  size_t hidden_count = 0;
  if (!(in >> input_dim >> output_dim >> sigmoid >> hidden_count) ||
      input_dim <= 0 || output_dim <= 0 || hidden_count > 64) {
    return std::nullopt;
  }
  std::vector<int> hidden(hidden_count);
  for (int& h : hidden) {
    if (!(in >> h) || h <= 0) return std::nullopt;
  }
  Ffn net(input_dim, hidden, output_dim, /*seed=*/0,
          sigmoid != 0 ? OutputActivation::kSigmoid
                       : OutputActivation::kLinear);
  std::vector<double> params(net.ParameterCount());
  for (double& v : params) {
    if (!(in >> v)) return std::nullopt;
  }
  net.SetParameters(params);
  return net;
}

}  // namespace

bool Ffn::Save(std::ostream& out) const {
  persist::Writer w;
  w.I32(input_dim_);
  w.I32(output_dim_);
  w.U8(out_act_ == OutputActivation::kSigmoid ? 1 : 0);
  const std::vector<int> hidden = HiddenDims();
  w.U32(static_cast<uint32_t>(hidden.size()));
  for (int h : hidden) w.I32(h);
  w.F64Vec(GetParameters());
  const std::string payload = w.Take();
  if (!persist::WriteExact(out, kFfnMagic, sizeof(kFfnMagic))) return false;
  persist::Writer header;
  header.U32(persist::Crc32(payload));
  header.U64(payload.size());
  return persist::WriteExact(out, header.buffer().data(),
                             header.buffer().size()) &&
         persist::WriteExact(out, payload.data(), payload.size());
}

std::optional<Ffn> Ffn::Load(std::istream& in) {
  // The legacy text format begins with the lower-case 'e' of "elsi-ffn";
  // the binary magic begins with 'E'.
  if (in.peek() == 'e') return LoadFfnTextV1(in);
  char magic[4] = {};
  if (!persist::ReadExact(in, magic, sizeof(magic)) ||
      std::memcmp(magic, kFfnMagic, sizeof(kFfnMagic)) != 0) {
    return std::nullopt;
  }
  unsigned char header[12];
  if (!persist::ReadExact(in, header, sizeof(header))) return std::nullopt;
  persist::Reader hr(header, sizeof(header));
  const uint32_t crc = hr.U32();
  const uint64_t len = hr.U64();
  if (len > kFfnMaxPayload) return std::nullopt;
  std::string payload(len, '\0');
  if (!persist::ReadExact(in, payload.data(), len) ||
      persist::Crc32(payload) != crc) {
    return std::nullopt;
  }
  persist::Reader r(payload);
  const int input_dim = r.I32();
  const int output_dim = r.I32();
  const bool sigmoid = r.U8() != 0;
  const uint32_t hidden_count = r.U32();
  if (!r.ok() || input_dim <= 0 || output_dim <= 0 || hidden_count > 64) {
    return std::nullopt;
  }
  std::vector<int> hidden(hidden_count);
  for (int& h : hidden) {
    h = r.I32();
    if (!r.ok() || h <= 0) return std::nullopt;
  }
  std::vector<double> params;
  if (!r.F64Vec(&params)) return std::nullopt;
  Ffn net(input_dim, hidden, output_dim, /*seed=*/0,
          sigmoid ? OutputActivation::kSigmoid : OutputActivation::kLinear);
  if (params.size() != net.ParameterCount()) return std::nullopt;
  net.SetParameters(params);
  return net;
}

}  // namespace elsi
