#ifndef ELSI_ML_MATRIX_H_
#define ELSI_ML_MATRIX_H_

#include <cstddef>
#include <vector>

#include "simd/simd.h"

namespace elsi {

/// Raw row-major GEMM entry points behind Matrix and the FFN inference
/// scratch path. These forward to the runtime-dispatched kernel table
/// (simd::Active()): register-tiled scalar code on the baseline, FMA
/// vector kernels on AVX2/AVX-512/NEON. Every level keeps one invariant:
/// each output element is an ascending-k accumulation computed
/// independently of every other element, so — the property the batched
/// query path relies on — row i of a batched product is bit-identical to
/// the product of row i alone *within the active level*. The scalar level
/// additionally matches the plain triple loop bit-exactly; FMA levels
/// differ from it only by the fused rounding (see DESIGN.md, "SIMD
/// kernel layer").

/// c (m x n) = a (m x k) * b (k x n). `c` is overwritten.
void GemmNN(const double* a, const double* b, double* c, size_t m, size_t k,
            size_t n);

/// c (m x n) = a^T * b where a is (k x m) and b is (k x n). `c` is
/// overwritten. Avoids materialising the transpose in the backward pass.
void GemmTN(const double* a, const double* b, double* c, size_t m, size_t k,
            size_t n);

/// c (m x n) = a * b^T where a is (m x k) and b is (n x k). `c` is
/// overwritten.
void GemmNT(const double* a, const double* b, double* c, size_t m, size_t k,
            size_t n);

/// Dense row-major matrix of doubles. Deliberately minimal: just the
/// storage + kernels the FFN/DQN training loops need. Copyable and movable.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix FromRows(const std::vector<std::vector<double>>& rows);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double At(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  double* RowPtr(size_t r) { return data_.data() + r * cols_; }
  const double* RowPtr(size_t r) const { return data_.data() + r * cols_; }

  simd::AlignedVector& data() { return data_; }
  const simd::AlignedVector& data() const { return data_; }

  /// this (m x k) times rhs (k x n) -> (m x n).
  Matrix MatMul(const Matrix& rhs) const;

  /// this^T (k x m) times rhs (k x n) -> (m x n); avoids materialising the
  /// transpose in the backward pass.
  Matrix TransposedMatMul(const Matrix& rhs) const;

  /// this (m x k) times rhs^T (n x k) -> (m x n).
  Matrix MatMulTransposed(const Matrix& rhs) const;

  /// Adds `bias` (length cols) to every row in place.
  void AddRowBroadcast(const std::vector<double>& bias);

  /// Sum over rows -> vector of length cols.
  std::vector<double> ColumnSums() const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  // 64-byte-aligned so the vector kernels' row loads never split cache
  // lines (rows themselves stay aligned whenever cols is a multiple of 8).
  simd::AlignedVector data_;
};

}  // namespace elsi

#endif  // ELSI_ML_MATRIX_H_
