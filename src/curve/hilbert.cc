#include "curve/hilbert.h"

#include "common/logging.h"

namespace elsi {
namespace {

// Rotates/flips a quadrant so the curve orientation is canonical. Standard
// helper from Hamilton's compact Hilbert description (also on Wikipedia).
void Rotate(uint64_t side, uint32_t* x, uint32_t* y, uint32_t rx, uint32_t ry) {
  if (ry == 0) {
    if (rx == 1) {
      *x = static_cast<uint32_t>(side - 1 - *x);
      *y = static_cast<uint32_t>(side - 1 - *y);
    }
    const uint32_t t = *x;
    *x = *y;
    *y = t;
  }
}

}  // namespace

uint64_t HilbertEncode(uint32_t x, uint32_t y, int order) {
  ELSI_CHECK(order >= 1 && order <= 32) << "order out of range: " << order;
  uint64_t d = 0;
  for (int i = order - 1; i >= 0; --i) {
    const uint64_t s = 1ULL << i;
    const uint32_t rx = (x & s) ? 1 : 0;
    const uint32_t ry = (y & s) ? 1 : 0;
    d += s * s * ((3 * rx) ^ ry);
    Rotate(s, &x, &y, rx, ry);
  }
  return d;
}

void HilbertDecode(uint64_t h, uint32_t* x, uint32_t* y, int order) {
  ELSI_CHECK(order >= 1 && order <= 32) << "order out of range: " << order;
  uint32_t cx = 0;
  uint32_t cy = 0;
  uint64_t t = h;
  for (int i = 0; i < order; ++i) {
    const uint64_t s = 1ULL << i;
    const uint32_t rx = static_cast<uint32_t>((t / 2) & 1);
    const uint32_t ry = static_cast<uint32_t>((t ^ rx) & 1);
    Rotate(s, &cx, &cy, rx, ry);
    cx += static_cast<uint32_t>(s * rx);
    cy += static_cast<uint32_t>(s * ry);
    t /= 4;
  }
  *x = cx;
  *y = cy;
}

}  // namespace elsi
