#include "curve/zorder.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace elsi {
namespace {

// Spreads the 32 bits of `v` to the even bit positions of a 64-bit word.
uint64_t SpreadBits(uint32_t v) {
  uint64_t x = v;
  x = (x | (x << 16)) & 0x0000ffff0000ffffULL;
  x = (x | (x << 8)) & 0x00ff00ff00ff00ffULL;
  x = (x | (x << 4)) & 0x0f0f0f0f0f0f0f0fULL;
  x = (x | (x << 2)) & 0x3333333333333333ULL;
  x = (x | (x << 1)) & 0x5555555555555555ULL;
  return x;
}

// Inverse of SpreadBits: gathers the even bit positions into 32 bits.
uint32_t GatherBits(uint64_t x) {
  x &= 0x5555555555555555ULL;
  x = (x | (x >> 1)) & 0x3333333333333333ULL;
  x = (x | (x >> 2)) & 0x0f0f0f0f0f0f0f0fULL;
  x = (x | (x >> 4)) & 0x00ff00ff00ff00ffULL;
  x = (x | (x >> 8)) & 0x0000ffff0000ffffULL;
  x = (x | (x >> 16)) & 0x00000000ffffffffULL;
  return static_cast<uint32_t>(x);
}

// Mask of every bit belonging to the same dimension as `bit` (0-based from
// the LSB) that is strictly below `bit`, within an interleaved code.
uint64_t SameDimLowerMask(int bit) {
  const uint64_t dim_mask =
      (bit % 2 == 0) ? 0x5555555555555555ULL : 0xaaaaaaaaaaaaaaaaULL;
  const uint64_t below = (bit == 0) ? 0 : ((1ULL << bit) - 1);
  return dim_mask & below;
}

}  // namespace

uint64_t MortonEncode(uint32_t x, uint32_t y) {
  return SpreadBits(x) | (SpreadBits(y) << 1);
}

void MortonDecode(uint64_t code, uint32_t* x, uint32_t* y) {
  *x = GatherBits(code);
  *y = GatherBits(code >> 1);
}

bool ZCodeInBox(uint64_t code, uint64_t zmin, uint64_t zmax) {
  uint32_t x, y, lx, ly, hx, hy;
  MortonDecode(code, &x, &y);
  MortonDecode(zmin, &lx, &ly);
  MortonDecode(zmax, &hx, &hy);
  return x >= lx && x <= hx && y >= ly && y <= hy;
}

uint64_t ZBigmin(uint64_t code, uint64_t zmin, uint64_t zmax) {
  ELSI_DCHECK(zmin <= zmax);
  uint64_t bigmin = zmax;  // Fallback; the loop always finds a tighter value
                           // when `code` is inside [zmin, zmax).
  for (int bit = 63; bit >= 0; --bit) {
    const uint64_t mask = 1ULL << bit;
    const int c = (code & mask) ? 1 : 0;
    const int lo = (zmin & mask) ? 1 : 0;
    const int hi = (zmax & mask) ? 1 : 0;
    const int pattern = (c << 2) | (lo << 1) | hi;
    switch (pattern) {
      case 0b000:
        break;  // All zero at this bit: continue to lower bits.
      case 0b001: {
        // code=0, min=0, max=1: the box splits here. Candidate BIGMIN lives
        // in the upper half: min with this bit forced to 1 and same-dim
        // lower bits cleared. Continue searching the lower half.
        const uint64_t lower = SameDimLowerMask(bit);
        bigmin = (zmin | mask) & ~lower;
        zmax = (zmax & ~mask) | lower;  // "0111...": top of the lower half.
        break;
      }
      case 0b011:
        // code=0, min=1: every box code is above `code`; zmin is BIGMIN.
        return zmin;
      case 0b100:
        // code=1, max=0: every box code is below `code`; return the best
        // candidate recorded so far.
        return bigmin;
      case 0b101: {
        // code=1, min=0, max=1: only the upper half can exceed `code`.
        const uint64_t lower = SameDimLowerMask(bit);
        zmin = (zmin | mask) & ~lower;  // "1000...": bottom of the upper half.
        break;
      }
      case 0b111:
        break;  // All one: continue to lower bits.
      default:
        // min bit = 1 with max bit = 0 contradicts zmin <= zmax per
        // dimension; unreachable for corner-derived codes.
        ELSI_CHECK(false) << "invalid BIGMIN state at bit " << bit;
    }
  }
  return bigmin;
}

GridQuantizer::GridQuantizer(const Rect& domain) : domain_(domain) {
  ELSI_CHECK(!domain.empty()) << "quantizer domain must be non-empty";
  const double wx = domain.hi_x - domain.lo_x;
  const double wy = domain.hi_y - domain.lo_y;
  // Degenerate extents collapse to a single grid line; guard the division.
  inv_wx_ = wx > 0 ? 1.0 / wx : 0.0;
  inv_wy_ = wy > 0 ? 1.0 / wy : 0.0;
}

uint32_t GridQuantizer::Quantize(double v, double lo, double inv_w) {
  constexpr double kMax = 4294967295.0;  // 2^32 - 1
  const double t = std::clamp((v - lo) * inv_w, 0.0, 1.0);
  return static_cast<uint32_t>(t * kMax);
}

}  // namespace elsi
