#ifndef ELSI_CURVE_ZORDER_H_
#define ELSI_CURVE_ZORDER_H_

#include <cstdint>

#include "common/geometry.h"

namespace elsi {

/// Interleaves the bits of two 32-bit coordinates into a 64-bit Morton
/// (Z-order) code: bit i of x lands at position 2i, bit i of y at 2i + 1.
uint64_t MortonEncode(uint32_t x, uint32_t y);

/// Inverse of MortonEncode.
void MortonDecode(uint64_t code, uint32_t* x, uint32_t* y);

/// BIGMIN (Tropf & Herzog, 1981): the smallest Z-code >= `code` whose
/// decoded point lies inside the query box [zmin, zmax] (both inclusive,
/// given as Z-codes of the box's low and high corners). Requires
/// zmin <= code <= zmax and `code` itself decoding *outside* the box;
/// used to skip false-positive runs during Z-range window scans.
uint64_t ZBigmin(uint64_t code, uint64_t zmin, uint64_t zmax);

/// True when the point decoded from `code` lies inside the box spanned by
/// the decoded corners of `zmin` and `zmax`.
bool ZCodeInBox(uint64_t code, uint64_t zmin, uint64_t zmax);

/// Maps doubles in a fixed domain rectangle onto the 32-bit-per-dimension
/// integer grid used by the curves. Values outside the domain are clamped,
/// which keeps insertions of out-of-domain points well defined.
class GridQuantizer {
 public:
  /// `domain` must have positive extent in both dimensions.
  explicit GridQuantizer(const Rect& domain);

  uint32_t QuantizeX(double x) const { return Quantize(x, domain_.lo_x, inv_wx_); }
  uint32_t QuantizeY(double y) const { return Quantize(y, domain_.lo_y, inv_wy_); }

  /// Z-code of a point under this quantizer.
  uint64_t ZCode(const Point& p) const {
    return MortonEncode(QuantizeX(p.x), QuantizeY(p.y));
  }

  const Rect& domain() const { return domain_; }

 private:
  static uint32_t Quantize(double v, double lo, double inv_w);

  Rect domain_;
  double inv_wx_;
  double inv_wy_;
};

}  // namespace elsi

#endif  // ELSI_CURVE_ZORDER_H_
