#ifndef ELSI_CURVE_HILBERT_H_
#define ELSI_CURVE_HILBERT_H_

#include <cstdint>

namespace elsi {

/// Hilbert-curve index of the cell (x, y) on a 2^order x 2^order grid.
/// `order` is the number of bits per dimension (1..32); coordinates must be
/// < 2^order. The Hilbert curve preserves locality better than the Z-curve
/// and is the ordering used by the HRR bulk-loaded R-tree.
uint64_t HilbertEncode(uint32_t x, uint32_t y, int order = 32);

/// Inverse of HilbertEncode.
void HilbertDecode(uint64_t h, uint32_t* x, uint32_t* y, int order = 32);

}  // namespace elsi

#endif  // ELSI_CURVE_HILBERT_H_
