// Reproduces Table II: ablation of the learned method selector. Builds each
// base index with (i) ELSI's FFN selector, (ii) a random selector ("Rand"),
// (iii) each fixed method, and (iv) OG, reporting build time and point-query
// time on OSM1-style data at lambda = 0.8. NA marks methods the base index
// does not admit (CL/RL for LISA).

#include <algorithm>
#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "data/workload.h"

namespace elsi {
namespace bench {
namespace {

void Run() {
  PrintBanner("bench_tab2_ablation",
              "Table II — ELSI vs random selector vs fixed methods (OSM1, "
              "lambda=0.8)");
  const size_t n = BenchN();
  const double lambda = 0.8;
  const Dataset data = GenerateDataset(DatasetKind::kOsm1, n, BenchSeed());
  const auto queries =
      SamplePointQueries(data, std::min<size_t>(n, 5000), BenchSeed() + 1);

  struct Cell {
    double build = 0.0;
    double query = 0.0;
    bool available = false;
  };
  const std::vector<std::string> columns = {"ELSI", "Rand", "SP", "CL",
                                            "MR",   "RS",   "RL", "OG"};

  std::vector<std::vector<Cell>> build_rows;
  std::vector<std::string> row_names;
  for (BaseIndexKind kind : kAllBaseIndexKinds) {
    row_names.push_back(BaseIndexKindName(kind));
    std::vector<Cell> cells(columns.size());
    const auto enabled = DefaultEnabledMethods(BaseIndexKindName(kind));
    for (size_t c = 0; c < columns.size(); ++c) {
      std::shared_ptr<MethodSelector> selector;
      if (columns[c] == "ELSI") {
        selector =
            std::make_shared<ScorerSelector>(GetBenchScorer(), lambda, 1.0);
      } else if (columns[c] == "Rand") {
        selector = std::make_shared<RandomSelector>(BenchSeed());
      } else {
        BuildMethodId method = BuildMethodId::kOG;
        for (BuildMethodId m : kSelectorPool) {
          if (BuildMethodName(m) == columns[c]) method = m;
        }
        if (std::find(enabled.begin(), enabled.end(), method) ==
            enabled.end()) {
          continue;  // NA cell.
        }
        selector = std::make_shared<FixedSelector>(method);
      }
      auto processor =
          MakeElsiProcessor(kind, BenchProcessorConfig(n), selector);
      auto index = MakeBaseIndex(kind, processor, BenchScale(n));
      cells[c].build = MeasureBuildSeconds(index.get(), data);
      cells[c].query = MeasurePointQueryMicros(*index, queries);
      cells[c].available = true;
    }
    build_rows.push_back(std::move(cells));
  }

  auto print_metric = [&](const std::string& title, bool build_time) {
    std::printf("\n%s\n\n", title.c_str());
    std::vector<std::string> header = {"index"};
    header.insert(header.end(), columns.begin(), columns.end());
    Table table(header);
    for (size_t r = 0; r < build_rows.size(); ++r) {
      std::vector<std::string> row = {row_names[r]};
      for (const Cell& cell : build_rows[r]) {
        if (!cell.available) {
          row.push_back("NA");
        } else {
          row.push_back(build_time ? FormatSeconds(cell.build)
                                   : FormatMicros(cell.query));
        }
      }
      table.AddRow(row);
    }
    table.Print();
  };
  print_metric("Build time", true);
  print_metric("Point query time", false);

  std::printf(
      "\nExpected shape (paper Table II): ELSI's build times track the\n"
      "cheap methods and beat Rand (which risks picking CL/OG); point-query\n"
      "times stay flat across selectors; OG builds are one to two orders\n"
      "slower.\n");
}

}  // namespace
}  // namespace bench
}  // namespace elsi

int main(int argc, char** argv) {
  elsi::bench::InitBenchThreads(argc, argv);
  elsi::bench::Run();
  return 0;
}
