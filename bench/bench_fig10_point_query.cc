// Reproduces Fig. 10: point query time vs data distribution for the ten
// indices of Fig. 8. The paper queries every indexed point; this harness
// queries a data-distributed sample capped for CPU runtime.

#include <algorithm>
#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "data/workload.h"

namespace elsi {
namespace bench {
namespace {

void Run() {
  PrintBanner("bench_fig10_point_query",
              "Fig. 10 — point query time vs distribution");
  const size_t n = BenchN();
  const double lambda = 0.8;
  const size_t query_count = std::min<size_t>(n, 20000);

  const std::vector<std::string> traditional = {"Grid", "KDB", "HRR", "RR*"};
  const std::vector<LearnedVariant> learned = {
      {BaseIndexKind::kML, false},  {BaseIndexKind::kML, true},
      {BaseIndexKind::kRSMI, false}, {BaseIndexKind::kRSMI, true},
      {BaseIndexKind::kLISA, false}, {BaseIndexKind::kLISA, true},
  };

  std::vector<std::string> header = {"dataset"};
  for (const auto& name : traditional) header.push_back(name);
  for (const auto& v : learned) header.push_back(v.Label());
  Table table(header);

  for (DatasetKind kind : kAllDatasetKinds) {
    const Dataset data = GenerateDataset(kind, n, BenchSeed());
    const auto queries =
        SamplePointQueries(data, query_count, BenchSeed() + 7);
    std::vector<std::string> row = {DatasetKindName(kind)};
    for (const auto& name : traditional) {
      auto index = MakeTraditionalIndex(name);
      index->Build(data);
      row.push_back(FormatMicros(MeasurePointQueryMicros(*index, queries)));
    }
    for (const auto& variant : learned) {
      auto bundle = MakeLearnedIndex(variant, n, lambda);
      bundle.index->Build(data);
      row.push_back(
          FormatMicros(MeasurePointQueryMicros(*bundle.index, queries)));
    }
    table.AddRow(row);
    std::fprintf(stderr, "[bench] %s done\n", DatasetKindName(kind).c_str());
  }
  table.Print();
  std::printf(
      "\nExpected shape (paper Fig. 10): learned indices beat the\n"
      "traditional ones except Grid on Uniform; the -F variants stay within\n"
      "~15%% of their no-ELSI counterparts and can beat them on noisy real\n"
      "distributions.\n");
}

}  // namespace
}  // namespace bench
}  // namespace elsi

int main(int argc, char** argv) {
  elsi::bench::InitBenchThreads(argc, argv);
  elsi::bench::Run();
  return 0;
}
