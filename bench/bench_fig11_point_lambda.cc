// Reproduces Fig. 11: point query time of the ELSI-based indices vs lambda
// on OSM1 and TPC-H, with RR* and RSMI (no ELSI) as flat references.

#include <algorithm>
#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "data/workload.h"

namespace elsi {
namespace bench {
namespace {

void RunDataset(DatasetKind kind, size_t n) {
  const Dataset data = GenerateDataset(kind, n, BenchSeed());
  const auto queries = SamplePointQueries(
      data, std::min<size_t>(n, 10000), BenchSeed() + 3);
  std::printf("\n--- %s ---\n", DatasetKindName(kind).c_str());

  {
    auto rstar = MakeTraditionalIndex("RR*");
    rstar->Build(data);
    auto bundle = MakeLearnedIndex({BaseIndexKind::kRSMI, false}, n, 0.8);
    bundle.index->Build(data);
    std::printf("reference: RR* %s, RSMI (no ELSI) %s\n",
                FormatMicros(MeasurePointQueryMicros(*rstar, queries)).c_str(),
                FormatMicros(
                    MeasurePointQueryMicros(*bundle.index, queries)).c_str());
  }

  Table table({"lambda", "ML-F", "RSMI-F", "LISA-F"});
  for (double lambda = 0.0; lambda <= 1.001; lambda += 0.2) {
    std::vector<std::string> row = {FormatRatio(lambda)};
    for (BaseIndexKind base :
         {BaseIndexKind::kML, BaseIndexKind::kRSMI, BaseIndexKind::kLISA}) {
      auto bundle = MakeLearnedIndex({base, true}, n, lambda);
      bundle.index->Build(data);
      row.push_back(
          FormatMicros(MeasurePointQueryMicros(*bundle.index, queries)));
    }
    table.AddRow(row);
  }
  table.Print();
}

void Run() {
  PrintBanner("bench_fig11_point_lambda",
              "Fig. 11 — point query time vs lambda");
  const size_t n = BenchN();
  RunDataset(DatasetKind::kOsm1, n);
  RunDataset(DatasetKind::kTpch, n);
  std::printf(
      "\nExpected shape (paper Fig. 11): query times grow slowly with\n"
      "lambda (cheaper builds trade a little query efficiency); the curves\n"
      "stay in the same band as RSMI without ELSI and RR*.\n");
}

}  // namespace
}  // namespace bench
}  // namespace elsi

int main(int argc, char** argv) {
  elsi::bench::InitBenchThreads(argc, argv);
  elsi::bench::Run();
  return 0;
}
