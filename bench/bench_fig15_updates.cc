// Reproduces Fig. 15: skewed insertions. (a) average insertion time and
// (b) point query time vs the insertion ratio (1%..512% of the initial
// cardinality). Indices: RR* and the ELSI-based learned indices without
// global rebuilds (ML-F, RSMI-F, LISA-F) and with the rebuild predictor
// (ML-R, RSMI-R, LISA-R). The initial set follows OSM1, insertions follow
// Skewed, as in the paper.

#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "common/random.h"
#include "common/timer.h"
#include "data/workload.h"

namespace elsi {
namespace bench {
namespace {

struct Runner {
  std::string label;
  std::unique_ptr<SpatialIndex> raw;         // RR* path.
  LearnedIndexBundle bundle;                 // Learned path.
  std::unique_ptr<UpdateProcessor> updates;  // Null for the raw path.

  void Insert(const Point& p) {
    if (updates != nullptr) {
      updates->Insert(p);
    } else {
      raw->Insert(p);
    }
  }
  SpatialIndex& index() {
    return updates != nullptr ? *bundle.index : *raw;
  }
};

void Run() {
  PrintBanner("bench_fig15_updates",
              "Fig. 15 — insertion time and point query time vs insertion "
              "ratio");
  const size_t base_n = std::max<size_t>(10000, BenchN() / 5);
  const double lambda = 0.8;
  const Dataset base =
      GenerateDataset(DatasetKind::kOsm1, base_n, BenchSeed());
  const Dataset stream =
      GenerateSkewed(base_n * 6, BenchSeed() + 17);  // Up to 512% + slack.

  auto rebuild_predictor = GetBenchRebuildPredictor();

  std::vector<std::unique_ptr<Runner>> runners;
  {
    auto r = std::make_unique<Runner>();
    r->label = "RR*";
    r->raw = MakeTraditionalIndex("RR*");
    r->raw->Build(base);
    runners.push_back(std::move(r));
  }
  for (BaseIndexKind kind :
       {BaseIndexKind::kML, BaseIndexKind::kRSMI, BaseIndexKind::kLISA}) {
    for (bool with_rebuild : {false, true}) {
      auto r = std::make_unique<Runner>();
      r->label = BaseIndexKindName(kind) + (with_rebuild ? "-R" : "-F");
      r->bundle = MakeLearnedIndex({kind, true}, base_n, lambda);
      UpdateProcessorConfig ucfg;
      ucfg.enable_rebuild = with_rebuild;
      ucfg.f_u = 1024;
      r->updates = std::make_unique<UpdateProcessor>(
          r->bundle.index.get(),
          with_rebuild ? rebuild_predictor.get() : nullptr, ucfg);
      r->updates->Build(base);
      runners.push_back(std::move(r));
    }
  }

  std::vector<std::string> header = {"insert ratio"};
  for (const auto& r : runners) header.push_back(r->label);
  Table insert_table(header);
  Table query_table(header);

  Dataset current = base;
  size_t inserted = 0;
  size_t next_id = base.size();
  for (int checkpoint = 0; checkpoint < 10; ++checkpoint) {
    const size_t pct = 1u << checkpoint;  // 1..512 percent.
    const size_t target = base_n * pct / 100;
    std::vector<Point> batch;
    while (inserted + batch.size() < target) {
      Point p = stream[inserted + batch.size()];
      p.id = next_id++;
      batch.push_back(p);
    }

    std::vector<std::string> insert_row = {std::to_string(pct) + "%"};
    for (auto& runner : runners) {
      Timer timer;
      for (const Point& p : batch) runner->Insert(p);
      const double micros =
          timer.ElapsedMicros() / std::max<size_t>(1, batch.size());
      insert_row.push_back(FormatMicros(micros));
    }
    insert_table.AddRow(insert_row);

    current.insert(current.end(), batch.begin(), batch.end());
    inserted += batch.size();

    const auto queries = SamplePointQueries(
        current, std::min<size_t>(current.size(), 5000),
        BenchSeed() + checkpoint);
    std::vector<std::string> query_row = {std::to_string(pct) + "%"};
    for (auto& runner : runners) {
      query_row.push_back(
          FormatMicros(MeasurePointQueryMicros(runner->index(), queries)));
    }
    query_table.AddRow(query_row);
    std::fprintf(stderr, "[bench] checkpoint %zu%% done\n", pct);
  }

  std::printf("\n(a) average insertion time vs insertion ratio\n\n");
  insert_table.Print();
  std::printf("\n(b) point query time vs insertion ratio\n\n");
  query_table.Print();
  std::printf("\nrebuilds triggered:");
  for (const auto& r : runners) {
    if (r->updates != nullptr) {
      std::printf(" %s=%zu", r->label.c_str(), r->updates->rebuild_count());
    }
  }
  std::printf(
      "\n\nExpected shape (paper Fig. 15): first-percent insertions are the\n"
      "most expensive (page creation); -R variants pay rebuild spikes but\n"
      "keep point query times flat while -F variants degrade with the\n"
      "ratio; RR* grows slowly throughout.\n");
}

}  // namespace
}  // namespace bench
}  // namespace elsi

int main(int argc, char** argv) {
  elsi::bench::InitBenchThreads(argc, argv);
  elsi::bench::Run();
  return 0;
}
