// Reproduces Table I: decomposition of the index building cost (training
// time vs method-specific extra time) and the model error magnitude
// err_l + err_u, per build method, for ZM on OSM1-style data. The shared
// map-and-sort data preparation time is reported once, as in the paper.

#include <cstdio>
#include <memory>
#include <numeric>

#include "bench_util.h"
#include "common/timer.h"
#include "curve/zorder.h"

namespace elsi {
namespace bench {
namespace {

void Run() {
  PrintBanner("bench_tab1_cost_decomposition",
              "Table I — cost decomposition on OSM1 with ZM");
  const size_t n = BenchN();
  const Dataset data = GenerateDataset(DatasetKind::kOsm1, n, BenchSeed());

  // Shared data preparation: map to Z-values and sort (O(nd + n log n)).
  Timer prep_timer;
  const GridQuantizer quantizer(BoundingRect(data));
  std::vector<double> keys(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    keys[i] = static_cast<double>(
        MortonEncode(quantizer.QuantizeX(data[i].x) >> 6,
                     quantizer.QuantizeY(data[i].y) >> 6));
  }
  std::vector<size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&keys](size_t a, size_t b) { return keys[a] < keys[b]; });
  std::printf("\nshared map-and-sort data preparation: %s (all methods)\n\n",
              FormatSeconds(prep_timer.ElapsedSeconds()).c_str());

  const BuildMethodId rows[] = {BuildMethodId::kSP, BuildMethodId::kCL,
                                BuildMethodId::kMR, BuildMethodId::kRS,
                                BuildMethodId::kRL, BuildMethodId::kOG};
  Table table({"method", "training (T(|Ds|)+M(n))", "extra", "|Ds|",
               "|Error| (err_l+err_u)"});
  for (BuildMethodId method : rows) {
    BuildProcessorConfig cfg = BenchProcessorConfig(n);
    cfg.enabled = {method};
    auto processor = std::make_shared<BuildProcessor>(
        cfg, std::make_shared<FixedSelector>(method));
    auto index = MakeBaseIndex(BaseIndexKind::kZM, processor, BenchScale(n));
    index->Build(data);

    double train = 0.0;
    double extra = 0.0;
    double bounds = 0.0;
    double err = 0.0;
    size_t ds_total = 0;
    for (const BuildCallRecord& r : processor->records()) {
      train += r.train_seconds;
      extra += r.extra_seconds + r.select_seconds;
      bounds += r.bounds_seconds;
      err += r.error_magnitude;
      ds_total += r.training_size;
    }
    table.AddRow({BuildMethodName(method),
                  FormatSeconds(train + bounds),  // T(|Ds|) + M(n).
                  FormatSeconds(extra), std::to_string(ds_total),
                  FormatRatio(err)});
  }
  table.Print();
  std::printf(
      "\nExpected shape (paper Table I): MR trains fastest (model reuse),\n"
      "OG slowest; CL's extra cost dominates all other methods; error\n"
      "magnitudes stay within the same order across methods.\n");
}

}  // namespace
}  // namespace bench
}  // namespace elsi

int main(int argc, char** argv) {
  elsi::bench::InitBenchThreads(argc, argv);
  elsi::bench::Run();
  return 0;
}
