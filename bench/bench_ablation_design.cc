// Ablations for the design choices DESIGN.md calls out (not a paper figure):
//   (a) BIGMIN jumps vs plain filtered Z-range scans in ZM window queries,
//   (b) systematic (SP) vs random (RSP) sampling CDF fidelity across rates,
//   (c) the paper's O(ns log n) KS scan vs the exact O(ns + n) merge,
//   (d) full-Lloyd vs mini-batch k-means inside the CL method.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "common/cdf.h"
#include "common/timer.h"
#include "core/methods/sampling.h"
#include "curve/zorder.h"
#include "data/workload.h"
#include "ml/kmeans.h"

namespace elsi {
namespace bench {
namespace {

void BigminAblation(const Dataset& data) {
  std::printf("\n(a) ZM window queries: BIGMIN jumps vs plain Z-range scan\n\n");
  const size_t n = data.size();
  auto trainer = std::make_shared<DirectTrainer>(BenchModelConfig());
  ZmIndex::Config with;
  with.array.leaf_target = BenchScale(n).leaf_target;
  ZmIndex::Config without = with;
  without.use_bigmin = false;
  ZmIndex bigmin(trainer, with);
  ZmIndex plain(trainer, without);
  bigmin.Build(data);
  plain.Build(data);

  Table table({"window size", "BIGMIN", "plain scan", "speedup"});
  for (double frac : {0.0001, 0.0016, 0.01}) {
    const auto windows =
        SampleWindowQueries(data, 200, frac, BenchSeed() + 31);
    const auto truths = WindowTruths(data, windows);
    const double t_bigmin = MeasureWindowQuery(bigmin, windows, truths).first;
    const double t_plain = MeasureWindowQuery(plain, windows, truths).first;
    char label[32];
    std::snprintf(label, sizeof(label), "%.2f%%", frac * 100);
    table.AddRow({label, FormatMicros(t_bigmin), FormatMicros(t_plain),
                  FormatRatio(t_plain / std::max(t_bigmin, 1e-9))});
  }
  table.Print();
}

void SamplingAblation(const Dataset& data) {
  std::printf("\n(b) SP vs RSP: KS distance of Ds to D across sampling rates\n\n");
  const GridQuantizer quantizer(BoundingRect(data));
  const std::function<double(const Point&)> key_fn =
      [&quantizer](const Point& p) {
        return static_cast<double>(
            MortonEncode(quantizer.QuantizeX(p.x) >> 6,
                         quantizer.QuantizeY(p.y) >> 6));
      };
  std::vector<Point> pts = data;
  std::sort(pts.begin(), pts.end(),
            [&key_fn](const Point& a, const Point& b) {
              return key_fn(a) < key_fn(b);
            });
  std::vector<double> keys(pts.size());
  for (size_t i = 0; i < pts.size(); ++i) keys[i] = key_fn(pts[i]);
  const BuildContext ctx{pts, keys, key_fn};

  Table table({"rate", "dist(SP, D)", "dist(RSP, D)"});
  for (double rho : {0.001, 0.005, 0.02}) {
    SamplingConfig cfg;
    cfg.rho = rho;
    SystematicSampling sp(cfg);
    RandomSampling rsp(cfg, BenchSeed());
    char label[32];
    std::snprintf(label, sizeof(label), "%.3f", rho);
    table.AddRow(
        {label,
         FormatRatio(KsDistanceFast(sp.ComputeTrainingSet(ctx), keys)),
         FormatRatio(KsDistanceFast(rsp.ComputeTrainingSet(ctx), keys))});
  }
  table.Print();
}

void KsAblation(const Dataset& data) {
  std::printf("\n(c) KS distance: paper's O(ns log n) scan vs exact merge\n\n");
  const GridQuantizer quantizer(BoundingRect(data));
  std::vector<double> keys(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    keys[i] = static_cast<double>(
        MortonEncode(quantizer.QuantizeX(data[i].x) >> 6,
                     quantizer.QuantizeY(data[i].y) >> 6));
  }
  std::sort(keys.begin(), keys.end());
  Table table({"|Ds|", "fast value", "exact value", "fast time", "exact time"});
  for (size_t ns : {256u, 1024u, 4096u}) {
    std::vector<double> small;
    const size_t stride = std::max<size_t>(1, keys.size() / ns);
    for (size_t i = 1; i < keys.size(); i += stride) small.push_back(keys[i]);
    Timer fast_timer;
    double fast = 0.0;
    for (int i = 0; i < 50; ++i) fast = KsDistanceFast(small, keys);
    const double fast_seconds = fast_timer.ElapsedSeconds() / 50;
    Timer exact_timer;
    double exact = 0.0;
    for (int i = 0; i < 50; ++i) exact = KsDistance(small, keys);
    const double exact_seconds = exact_timer.ElapsedSeconds() / 50;
    table.AddRow({std::to_string(small.size()), FormatRatio(fast),
                  FormatRatio(exact), FormatSeconds(fast_seconds),
                  FormatSeconds(exact_seconds)});
  }
  table.Print();
}

void KMeansAblation(const Dataset& data) {
  std::printf("\n(d) CL's k-means: full Lloyd vs mini-batch (k = 100)\n\n");
  Table table({"variant", "time", "mean dist to centroid"});
  auto quality = [&](const KMeansResult& result) {
    double total = 0.0;
    for (const Point& p : data) {
      double best = 1e18;
      for (const Point& c : result.centroids) {
        best = std::min(best, SquaredDistance(p, c));
      }
      total += std::sqrt(best);
    }
    return total / data.size();
  };
  {
    KMeansOptions opts;
    opts.max_iterations = 8;
    Timer timer;
    const auto result = KMeans(data, 100, opts);
    const double seconds = timer.ElapsedSeconds();
    table.AddRow({"full Lloyd", FormatSeconds(seconds),
                  FormatRatio(quality(result))});
  }
  {
    KMeansOptions opts;
    opts.max_iterations = 20;
    opts.batch_size = 4096;
    Timer timer;
    const auto result = KMeans(data, 100, opts);
    const double seconds = timer.ElapsedSeconds();
    table.AddRow({"mini-batch", FormatSeconds(seconds),
                  FormatRatio(quality(result))});
  }
  table.Print();
}

void Run() {
  PrintBanner("bench_ablation_design",
              "design ablations (BIGMIN, SP vs RSP, KS fast vs exact, "
              "k-means)");
  const size_t n = BenchN();
  const Dataset data = GenerateDataset(DatasetKind::kOsm1, n, BenchSeed());
  BigminAblation(data);
  SamplingAblation(data);
  KsAblation(data);
  KMeansAblation(data);
}

}  // namespace
}  // namespace bench
}  // namespace elsi

int main(int argc, char** argv) {
  elsi::bench::InitBenchThreads(argc, argv);
  elsi::bench::Run();
  return 0;
}
