// Reproduces Fig. 14: kNN query time (a) and recall (b) vs data
// distribution, k = 25, for the ten indices of Fig. 8.

#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "data/workload.h"

namespace elsi {
namespace bench {
namespace {

void Run() {
  PrintBanner("bench_fig14_knn", "Fig. 14 — kNN time and recall (k = 25)");
  const size_t n = BenchN();
  const double lambda = 0.8;
  const size_t k = 25;
  const size_t query_count = FullMode() ? 1000 : 300;

  const std::vector<std::string> traditional = {"Grid", "KDB", "HRR", "RR*"};
  const std::vector<LearnedVariant> learned = {
      {BaseIndexKind::kML, false},  {BaseIndexKind::kML, true},
      {BaseIndexKind::kRSMI, false}, {BaseIndexKind::kRSMI, true},
      {BaseIndexKind::kLISA, false}, {BaseIndexKind::kLISA, true},
  };

  std::vector<std::string> header = {"dataset"};
  for (const auto& name : traditional) header.push_back(name);
  for (const auto& v : learned) header.push_back(v.Label());
  Table time_table(header);
  std::vector<std::string> recall_header = {"dataset"};
  for (const auto& v : learned) recall_header.push_back(v.Label());
  Table recall_table(recall_header);

  for (DatasetKind kind : kAllDatasetKinds) {
    const Dataset data = GenerateDataset(kind, n, BenchSeed());
    const auto queries = SampleKnnQueries(data, query_count, BenchSeed() + 15);
    const auto truths = KnnTruths(data, queries, k);

    std::vector<std::string> time_row = {DatasetKindName(kind)};
    std::vector<std::string> recall_row = {DatasetKindName(kind)};
    for (const auto& name : traditional) {
      auto index = MakeTraditionalIndex(name);
      index->Build(data);
      time_row.push_back(
          FormatMicros(MeasureKnnQuery(*index, queries, k, truths).first));
    }
    for (const auto& variant : learned) {
      auto bundle = MakeLearnedIndex(variant, n, lambda);
      bundle.index->Build(data);
      const auto [micros, recall] =
          MeasureKnnQuery(*bundle.index, queries, k, truths);
      time_row.push_back(FormatMicros(micros));
      recall_row.push_back(FormatRatio(recall));
    }
    time_table.AddRow(time_row);
    recall_table.AddRow(recall_row);
    std::fprintf(stderr, "[bench] %s done\n", DatasetKindName(kind).c_str());
  }
  std::printf("\n(a) kNN query time (%zu queries, k = %zu)\n\n", query_count,
              k);
  time_table.Print();
  std::printf("\n(b) kNN recall (learned indices)\n\n");
  recall_table.Print();
  std::printf(
      "\nExpected shape (paper Fig. 14): kNN times track window-query\n"
      "behaviour; using ELSI changes the times by only a few percent; ML-F\n"
      "stays at recall 1.0, RSMI-F/LISA-F drop at most ~0.10/0.06.\n");
}

}  // namespace
}  // namespace bench
}  // namespace elsi

int main(int argc, char** argv) {
  elsi::bench::InitBenchThreads(argc, argv);
  elsi::bench::Run();
  return 0;
}
