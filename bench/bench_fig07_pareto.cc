// Reproduces Fig. 7: build-time vs point-query-time Pareto fronts of the
// index building methods (SP, RSP, CL, MR, RS, RL, OG) on OSM1-style data,
// for each of the four base indices. Method parameters sweep along the
// paper's axes (rho, C, eps, beta, eta).

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>

#include "bench_util.h"
#include "data/workload.h"

namespace elsi {
namespace bench {
namespace {

struct MethodSetting {
  BuildMethodId method;
  std::string param;
  BuildProcessorConfig config;
};

std::vector<MethodSetting> Settings(size_t n) {
  const BuildProcessorConfig base = BenchProcessorConfig(n);
  std::vector<MethodSetting> settings;
  auto add = [&](BuildMethodId m, const std::string& param,
                 const std::function<void(BuildProcessorConfig*)>& tweak) {
    MethodSetting s{m, param, base};
    tweak(&s.config);
    s.config.enabled = {m};
    settings.push_back(std::move(s));
  };
  for (double rho : {0.001, 0.005, 0.02}) {
    add(BuildMethodId::kSP, "rho=" + std::to_string(rho),
        [rho](BuildProcessorConfig* c) { c->sp.rho = rho; });
    add(BuildMethodId::kRSP, "rho=" + std::to_string(rho),
        [rho](BuildProcessorConfig* c) { c->rsp.rho = rho; });
  }
  for (size_t clusters : {50u, 100u, 400u}) {
    add(BuildMethodId::kCL, "C=" + std::to_string(clusters),
        [clusters](BuildProcessorConfig* c) { c->cl.clusters = clusters; });
  }
  for (double eps : {0.5, 0.3, 0.1}) {
    add(BuildMethodId::kMR, "eps=" + std::to_string(eps),
        [eps](BuildProcessorConfig* c) { c->mr.epsilon = eps; });
  }
  for (size_t denom : {25u, 100u, 400u}) {
    const size_t beta = std::max<size_t>(16, n / denom);
    add(BuildMethodId::kRS, "beta=" + std::to_string(beta),
        [beta](BuildProcessorConfig* c) { c->rs.beta = beta; });
  }
  for (int eta : {8, 16, 24}) {
    add(BuildMethodId::kRL, "eta=" + std::to_string(eta),
        [eta](BuildProcessorConfig* c) { c->rl.eta = eta; });
  }
  add(BuildMethodId::kOG, "-", [](BuildProcessorConfig*) {});
  return settings;
}

void Run() {
  PrintBanner("bench_fig07_pareto",
              "Fig. 7 — build methods Pareto (build vs point query), OSM1");
  const size_t n = std::min<size_t>(BenchN(), FullMode() ? BenchN() : 30000);
  const Dataset data = GenerateDataset(DatasetKind::kOsm1, n, BenchSeed());
  const auto queries =
      SamplePointQueries(data, std::min<size_t>(n, 4000), BenchSeed() + 1);

  for (BaseIndexKind kind : kAllBaseIndexKinds) {
    const auto enabled = DefaultEnabledMethods(BaseIndexKindName(kind));
    std::printf("\n--- %s (n = %zu) ---\n", BaseIndexKindName(kind).c_str(),
                n);
    Table table({"method", "param", "build time", "point query"});
    for (const MethodSetting& setting : Settings(n)) {
      const bool applicable =
          setting.method == BuildMethodId::kRSP ||
          std::find(enabled.begin(), enabled.end(), setting.method) !=
              enabled.end();
      if (!applicable) {
        table.AddRow({BuildMethodName(setting.method), setting.param, "NA",
                      "NA"});
        continue;
      }
      auto processor = std::make_shared<BuildProcessor>(
          setting.config, std::make_shared<FixedSelector>(setting.method));
      auto index = MakeBaseIndex(kind, processor, BenchScale(n));
      const double build = MeasureBuildSeconds(index.get(), data);
      const double query = MeasurePointQueryMicros(*index, queries);
      table.AddRow({BuildMethodName(setting.method), setting.param,
                    FormatSeconds(build), FormatMicros(query)});
    }
    table.Print();
  }
  std::printf(
      "\nExpected shape (paper): build times rise with rho/C/(1-eps)/"
      "(1/beta)/eta while query times fall; MR builds fastest, CL slowest;\n"
      "RS and RL sit on the query-efficient end at much lower build cost\n"
      "than CL; RSP trails SP in query time at equal rates.\n");
}

}  // namespace
}  // namespace bench
}  // namespace elsi

int main(int argc, char** argv) {
  elsi::bench::InitBenchThreads(argc, argv);
  elsi::bench::Run();
  return 0;
}
