// Reproduces Fig. 12: window query time (a) and recall (b) vs data
// distribution, with the paper's default window size of 0.01% of the data
// space, for the ten indices of Fig. 8.

#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "data/workload.h"

namespace elsi {
namespace bench {
namespace {

void Run() {
  PrintBanner("bench_fig12_window_query",
              "Fig. 12 — window query time and recall vs distribution");
  const size_t n = BenchN();
  const double lambda = 0.8;
  const size_t window_count = FullMode() ? 1000 : 300;
  const double window_area = 0.0001;  // 0.01% of the space.

  const std::vector<std::string> traditional = {"Grid", "KDB", "HRR", "RR*"};
  const std::vector<LearnedVariant> learned = {
      {BaseIndexKind::kML, false},  {BaseIndexKind::kML, true},
      {BaseIndexKind::kRSMI, false}, {BaseIndexKind::kRSMI, true},
      {BaseIndexKind::kLISA, false}, {BaseIndexKind::kLISA, true},
  };

  std::vector<std::string> header = {"dataset"};
  for (const auto& name : traditional) header.push_back(name);
  for (const auto& v : learned) header.push_back(v.Label());
  Table time_table(header);
  std::vector<std::string> recall_header = {"dataset"};
  for (const auto& v : learned) recall_header.push_back(v.Label());
  Table recall_table(recall_header);

  for (DatasetKind kind : kAllDatasetKinds) {
    const Dataset data = GenerateDataset(kind, n, BenchSeed());
    const auto windows =
        SampleWindowQueries(data, window_count, window_area, BenchSeed() + 9);
    const auto truths = WindowTruths(data, windows);

    std::vector<std::string> time_row = {DatasetKindName(kind)};
    std::vector<std::string> recall_row = {DatasetKindName(kind)};
    for (const auto& name : traditional) {
      auto index = MakeTraditionalIndex(name);
      index->Build(data);
      const auto [micros, recall] = MeasureWindowQuery(*index, windows, truths);
      time_row.push_back(FormatMicros(micros));
      (void)recall;  // Traditional indices are exact by construction.
    }
    for (const auto& variant : learned) {
      auto bundle = MakeLearnedIndex(variant, n, lambda);
      bundle.index->Build(data);
      const auto [micros, recall] =
          MeasureWindowQuery(*bundle.index, windows, truths);
      time_row.push_back(FormatMicros(micros));
      recall_row.push_back(FormatRatio(recall));
    }
    time_table.AddRow(time_row);
    recall_table.AddRow(recall_row);
    std::fprintf(stderr, "[bench] %s done\n", DatasetKindName(kind).c_str());
  }
  std::printf("\n(a) window query time (%zu windows, %.4f%% of the space)\n\n",
              window_count, window_area * 100);
  time_table.Print();
  std::printf("\n(b) window query recall (learned indices)\n\n");
  recall_table.Print();
  std::printf(
      "\nExpected shape (paper Fig. 12): -F times within ~1.4x of the\n"
      "no-ELSI learned indices either way; ML/ML-F exact (recall 1.0);\n"
      "RSMI-F and LISA-F recall above ~0.90.\n");
}

}  // namespace
}  // namespace bench
}  // namespace elsi

int main(int argc, char** argv) {
  elsi::bench::InitBenchThreads(argc, argv);
  elsi::bench::Run();
  return 0;
}
