// Extensions beyond the paper's evaluation — both named in its conclusion
// as future work, implemented here:
//   (a) PGM-style piecewise-linear index models (provable error bounds) as
//       an alternative RankModel backend, compared with the FFN backend
//       under OG and under ELSI's training-set shrinking;
//   (b) a Flood-style query-aware index whose per-column models train
//       through ELSI, with the workload-driven column tuner.

#include <algorithm>
#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "common/timer.h"
#include "data/workload.h"
#include "learned/flood_index.h"

namespace elsi {
namespace bench {
namespace {

void PlaVsFfn(const Dataset& data) {
  std::printf("\n(a) RankModel backends on ZM: FFN (paper) vs PLA (PGM-style)\n\n");
  const size_t n = data.size();
  const auto queries =
      SamplePointQueries(data, std::min<size_t>(n, 5000), BenchSeed() + 41);

  Table table({"backend", "trainer", "build time", "point query",
               "err_l+err_u"});
  for (const bool pla : {false, true}) {
    for (const bool elsi : {false, true}) {
      BuildProcessorConfig cfg = BenchProcessorConfig(n);
      if (pla) {
        cfg.model.backend = RankModelBackend::kPla;
        cfg.model.pla_epsilon = 64.0;
      }
      std::shared_ptr<ModelTrainer> trainer;
      std::shared_ptr<BuildProcessor> processor;
      if (elsi) {
        cfg.enabled = {BuildMethodId::kRS};
        processor = std::make_shared<BuildProcessor>(
            cfg, std::make_shared<FixedSelector>(BuildMethodId::kRS));
        trainer = processor;
      } else {
        trainer = std::make_shared<DirectTrainer>(cfg.model);
      }
      auto index = MakeBaseIndex(BaseIndexKind::kZM, trainer, BenchScale(n));
      const double build = MeasureBuildSeconds(index.get(), data);
      const double query = MeasurePointQueryMicros(*index, queries);
      double err = 0.0;
      if (processor != nullptr) {
        for (const BuildCallRecord& r : processor->records()) {
          err += r.error_magnitude;
        }
      }
      table.AddRow({pla ? "PLA" : "FFN", elsi ? "ELSI (RS)" : "OG (direct)",
                    FormatSeconds(build), FormatMicros(query),
                    processor ? FormatRatio(err) : "-"});
    }
  }
  table.Print();
  std::printf(
      "\nPLA fits in one pass (no epochs), so its OG build is far cheaper\n"
      "than the FFN's, and its error bound is epsilon by construction; the\n"
      "FFN generalises better from tiny Ds samples.\n");
}

void FloodSection(const Dataset& data) {
  std::printf("\n(b) Flood-style query-aware index (per-column models via "
              "ELSI)\n\n");
  const size_t n = data.size();
  const auto windows = SampleWindowQueries(
      data, FullMode() ? 1000 : 300, 0.0001, BenchSeed() + 43);
  const auto truths = WindowTruths(data, windows);
  const auto queries =
      SamplePointQueries(data, std::min<size_t>(n, 5000), BenchSeed() + 44);

  Table table({"index", "build time", "point query", "window query",
               "window recall"});
  auto add_row = [&](const std::string& label, SpatialIndex* index,
                     double build) {
    const auto [wq, recall] = MeasureWindowQuery(*index, windows, truths);
    table.AddRow({label, FormatSeconds(build),
                  FormatMicros(MeasurePointQueryMicros(*index, queries)),
                  FormatMicros(wq), FormatRatio(recall)});
  };

  // ZM reference (exact learned index on the same data).
  {
    auto bundle = MakeLearnedIndex({BaseIndexKind::kZM, true}, n, 0.8);
    const double build = MeasureBuildSeconds(bundle.index.get(), data);
    add_row("ZM-F", bundle.index.get(), build);
  }
  // Flood with the heuristic grid, OG vs ELSI.
  {
    auto trainer = std::make_shared<DirectTrainer>(BenchModelConfig());
    FloodIndex index(trainer);
    const double build = MeasureBuildSeconds(&index, data);
    add_row("Flood (OG)", &index, build);
  }
  BuildProcessorConfig cfg = BenchProcessorConfig(n);
  cfg.enabled = {BuildMethodId::kSP};
  auto processor = std::make_shared<BuildProcessor>(
      cfg, std::make_shared<FixedSelector>(BuildMethodId::kSP));
  {
    FloodIndex index(processor);
    const double build = MeasureBuildSeconds(&index, data);
    add_row("Flood-F", &index, build);
  }
  // Flood with the workload-tuned grid.
  {
    Timer tune_timer;
    const size_t cols =
        FloodIndex::TuneColumnCount(data, windows, processor);
    const double tune_seconds = tune_timer.ElapsedSeconds();
    FloodIndex::Config fcfg;
    fcfg.columns = cols;
    FloodIndex index(processor, fcfg);
    const double build = MeasureBuildSeconds(&index, data);
    char label[64];
    std::snprintf(label, sizeof(label), "Flood-F tuned (%zu cols, +%s)",
                  cols, FormatSeconds(tune_seconds).c_str());
    add_row(label, &index, build);
  }
  table.Print();
}

void Run() {
  PrintBanner("bench_ext_future_work",
              "extensions: PGM-style PLA models and a Flood-style "
              "query-aware index");
  const size_t n = BenchN();
  const Dataset data = GenerateDataset(DatasetKind::kOsm1, n, BenchSeed());
  PlaVsFfn(data);
  FloodSection(data);
}

}  // namespace
}  // namespace bench
}  // namespace elsi

int main(int argc, char** argv) {
  elsi::bench::InitBenchThreads(argc, argv);
  elsi::bench::Run();
  return 0;
}
