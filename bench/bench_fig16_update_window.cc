// Reproduces Fig. 16: window query time (a) and recall (b) after skewed
// insertions, comparing local-rebuild-only variants (-F) with the rebuild
// predictor's global rebuilds (-R). RR* is the traditional reference.

#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "data/workload.h"

namespace elsi {
namespace bench {
namespace {

void Run() {
  PrintBanner("bench_fig16_update_window",
              "Fig. 16 — window queries under skewed insertion");
  const size_t base_n = std::max<size_t>(10000, BenchN() / 5);
  const double lambda = 0.8;
  const size_t window_count = 200;
  const Dataset base =
      GenerateDataset(DatasetKind::kOsm1, base_n, BenchSeed());
  const Dataset stream = GenerateSkewed(base_n * 6, BenchSeed() + 17);

  auto rebuild_predictor = GetBenchRebuildPredictor();

  struct Entry {
    std::string label;
    LearnedIndexBundle bundle;
    std::unique_ptr<UpdateProcessor> updates;
  };
  std::vector<std::unique_ptr<Entry>> entries;
  for (BaseIndexKind kind : {BaseIndexKind::kML, BaseIndexKind::kRSMI}) {
    for (bool with_rebuild : {false, true}) {
      auto e = std::make_unique<Entry>();
      e->label = BaseIndexKindName(kind) + (with_rebuild ? "-R" : "-F");
      e->bundle = MakeLearnedIndex({kind, true}, base_n, lambda);
      UpdateProcessorConfig ucfg;
      ucfg.enable_rebuild = with_rebuild;
      ucfg.f_u = 1024;
      e->updates = std::make_unique<UpdateProcessor>(
          e->bundle.index.get(),
          with_rebuild ? rebuild_predictor.get() : nullptr, ucfg);
      e->updates->Build(base);
      entries.push_back(std::move(e));
    }
  }
  auto rstar = MakeTraditionalIndex("RR*");
  rstar->Build(base);

  std::vector<std::string> header = {"insert ratio", "RR*"};
  for (const auto& e : entries) header.push_back(e->label);
  Table time_table(header);
  std::vector<std::string> recall_header = {"insert ratio"};
  for (const auto& e : entries) recall_header.push_back(e->label);
  Table recall_table(recall_header);

  Dataset current = base;
  size_t inserted = 0;
  size_t next_id = base.size();
  for (int checkpoint = 0; checkpoint < 10; ++checkpoint) {
    const size_t pct = 1u << checkpoint;
    const size_t target = base_n * pct / 100;
    while (inserted < target) {
      Point p = stream[inserted];
      p.id = next_id++;
      for (auto& e : entries) e->updates->Insert(p);
      rstar->Insert(p);
      current.push_back(p);
      ++inserted;
    }
    const auto windows = SampleWindowQueries(current, window_count, 0.0001,
                                             BenchSeed() + checkpoint * 7);
    const auto truths = WindowTruths(current, windows);
    std::vector<std::string> time_row = {std::to_string(pct) + "%"};
    std::vector<std::string> recall_row = {std::to_string(pct) + "%"};
    time_row.push_back(
        FormatMicros(MeasureWindowQuery(*rstar, windows, truths).first));
    for (auto& e : entries) {
      const auto [micros, recall] =
          MeasureWindowQuery(*e->bundle.index, windows, truths);
      time_row.push_back(FormatMicros(micros));
      recall_row.push_back(FormatRatio(recall));
    }
    time_table.AddRow(time_row);
    recall_table.AddRow(recall_row);
    std::fprintf(stderr, "[bench] checkpoint %zu%% done\n", pct);
  }

  std::printf("\n(a) window query time vs insertion ratio\n\n");
  time_table.Print();
  std::printf("\n(b) window query recall vs insertion ratio\n\n");
  recall_table.Print();
  std::printf("\nrebuilds:");
  for (const auto& e : entries) {
    std::printf(" %s=%zu", e->label.c_str(), e->updates->rebuild_count());
  }
  std::printf(
      "\n\nExpected shape (paper Fig. 16): query times grow with the\n"
      "insertion ratio; global rebuilds keep ML-R below ML-F and hold\n"
      "RSMI-R's recall near ~0.97 while RSMI-F's drifts toward ~0.90.\n");
}

}  // namespace
}  // namespace bench
}  // namespace elsi

int main(int argc, char** argv) {
  elsi::bench::InitBenchThreads(argc, argv);
  elsi::bench::Run();
  return 0;
}
