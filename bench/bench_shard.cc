// bench_shard — sharded scatter-gather engine sweep (no paper figure; see
// DESIGN.md "Sharded scatter-gather").
//
// Builds the ShardedIndex over clustered data at shard counts {1, 2, 4, 8,
// 16} and, per shard count, measures:
//
//   point  — one batched point-query pass through the scatter-gather
//            planner (every probe is a stored point, so the hit count is an
//            exact checksum), throughput in Mops/s plus the speedup over
//            the 1-shard row (routing to a smaller per-shard index is the
//            win even on one core),
//   window — a batched window pass (pruned fan-out + canonical merge),
//   knn    — best-first shard visiting with the mean shards-visited
//            counter (the pruning evidence: well below the shard count on
//            clustered data),
//   ops    — the three analytics operators (containment join, distance
//            join, aggregate-by-region) with exact match-count checksums.
//
// Writes BENCH_shard.json (override with ELSI_BENCH_SHARD_OUT) for the
// bench_diff gate: checksums are exact, timings advisory, throughputs get
// loose floors in CI (foreign runners differ; a planner regression that
// fans out to every shard tanks them far past the tolerance).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "data/workload.h"
#include "shard/operators.h"
#include "shard/sharded_index.h"

namespace elsi {
namespace bench {
namespace {

struct ShardRow {
  size_t shards = 0;
  double build_seconds = 0.0;
  size_t point_hits = 0;
  double point_mops = 0.0;
  double point_scaling = 1.0;
  size_t window_results = 0;
  double window_kqps = 0.0;
  size_t knn_results = 0;
  double knn_kqps = 0.0;
  double knn_visited_mean = 0.0;
  size_t join_matches = 0;
  size_t distance_matches = 0;
  size_t aggregate_count = 0;
  double ops_seconds = 0.0;
};

ShardRow RunShardCount(const Dataset& data, size_t shards,
                       const std::vector<Point>& probes,
                       const std::vector<Rect>& windows,
                       const std::vector<Point>& knn_queries, size_t k,
                       const std::vector<Rect>& regions,
                       double join_radius) {
  shard::ShardedIndexConfig cfg;
  cfg.partition.shards = shards;
  cfg.shard.kind = BaseIndexKind::kZM;
  cfg.shard.elsi = false;  // DirectTrainer keeps the sweep about the planner.
  cfg.shard.build.model = BenchModelConfig();
  cfg.shard.scale = BenchScale(std::max<size_t>(data.size() / shards, 1000));
  cfg.pool = &ThreadPool::Global();
  shard::ShardedIndex index(cfg);

  ShardRow row;
  row.shards = shards;
  Timer build_timer;
  index.Build(data);
  row.build_seconds = build_timer.ElapsedSeconds();

  BatchQueryOptions opts;
  opts.pool = &ThreadPool::Global();
  opts.chunk = 512;

  {
    std::vector<uint8_t> hit(probes.size(), 0);
    std::vector<Point> out(probes.size());
    Timer timer;
    index.PointQueryBatch(probes, hit, out, opts);
    const double seconds = timer.ElapsedSeconds();
    for (uint8_t h : hit) row.point_hits += h;
    row.point_mops = static_cast<double>(probes.size()) / seconds / 1e6;
  }

  {
    std::vector<std::vector<Point>> out(windows.size());
    Timer timer;
    index.WindowQueryBatch(windows, out, opts);
    const double seconds = timer.ElapsedSeconds();
    for (const auto& pts : out) row.window_results += pts.size();
    row.window_kqps = static_cast<double>(windows.size()) / seconds / 1e3;
  }

  {
    size_t visited = 0;
    Timer timer;
    for (const Point& q : knn_queries) {
      shard::ShardedIndex::KnnStats stats;
      row.knn_results += index.KnnQueryCounted(q, k, &stats).size();
      visited += stats.shards_visited;
    }
    const double seconds = timer.ElapsedSeconds();
    row.knn_kqps = static_cast<double>(knn_queries.size()) / seconds / 1e3;
    row.knn_visited_mean = static_cast<double>(visited) /
                           static_cast<double>(knn_queries.size());
  }

  {
    Timer timer;
    row.join_matches = shard::ContainmentJoin(index, regions, opts).size();
    row.distance_matches =
        shard::DistanceJoin(index, knn_queries, join_radius, opts).size();
    for (const auto& agg : shard::AggregateByRegion(index, regions, opts)) {
      row.aggregate_count += agg.count;
    }
    row.ops_seconds = timer.ElapsedSeconds();
  }
  return row;
}

int Run(int argc, char** argv) {
  InitBenchThreads(argc, argv);
  PrintBanner("bench_shard",
              "sharded scatter-gather: shard-count sweep on clustered data");

  const size_t n = BenchN();
  const uint64_t seed = BenchSeed();
  const size_t k = 10;
  const double join_radius = 0.02;
  const Dataset data = GenerateDataset(DatasetKind::kOsm1, n, seed);
  const std::vector<Point> probes =
      SamplePointQueries(data, FullMode() ? 50000 : 20000, seed + 1);
  const std::vector<Rect> windows =
      SampleWindowQueries(data, FullMode() ? 1000 : 400, 0.01, seed + 2);
  const std::vector<Point> knn_queries =
      SampleKnnQueries(data, FullMode() ? 1000 : 400, seed + 3);
  const std::vector<Rect> regions =
      SampleWindowQueries(data, FullMode() ? 500 : 200, 0.02, seed + 4);

  const std::vector<size_t> sweep = {1, 2, 4, 8, 16};
  std::vector<ShardRow> rows;
  Table table({"shards", "build", "point Mops/s", "speedup", "window kq/s",
               "knn kq/s", "knn visited", "join matches"});
  for (const size_t shards : sweep) {
    ShardRow row = RunShardCount(data, shards, probes, windows, knn_queries,
                                 k, regions, join_radius);
    if (row.point_hits != probes.size()) {
      std::fprintf(stderr, "shards=%zu: %zu of %zu probes missed\n", shards,
                   probes.size() - row.point_hits, probes.size());
      return 1;
    }
    if (!rows.empty()) row.point_scaling = row.point_mops / rows[0].point_mops;
    table.AddRow({std::to_string(row.shards), FormatSeconds(row.build_seconds),
                  FormatRatio(row.point_mops),
                  FormatRatio(row.point_scaling) + "x",
                  FormatRatio(row.window_kqps), FormatRatio(row.knn_kqps),
                  FormatRatio(row.knn_visited_mean),
                  std::to_string(row.join_matches)});
    rows.push_back(row);
  }
  table.Print();

  const char* env_out = std::getenv("ELSI_BENCH_SHARD_OUT");
  const std::string out = (env_out != nullptr && env_out[0] != '\0')
                              ? env_out
                              : "BENCH_shard.json";
  std::FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"n\": %zu,\n"
               "  \"seed\": %llu,\n"
               "  \"k\": %zu,\n"
               "  \"rows\": [\n",
               n, static_cast<unsigned long long>(seed), k);
  for (size_t i = 0; i < rows.size(); ++i) {
    const ShardRow& r = rows[i];
    std::fprintf(
        f,
        "    {\"name\": \"shards%zu\", \"build_seconds\": %.3f,\n"
        "     \"point\": {\"hits\": %zu, \"throughput_mops\": %.3f, "
        "\"scaling_speedup\": %.3f, \"batch\": 512},\n"
        "     \"window\": {\"result_count\": %zu, \"throughput_kqps\": "
        "%.3f},\n"
        "     \"knn\": {\"result_count\": %zu, \"throughput_kqps\": %.3f, "
        "\"shards_visited_mean\": %.3f},\n"
        "     \"join\": {\"result_count\": %zu},\n"
        "     \"distance_join\": {\"result_count\": %zu},\n"
        "     \"aggregate\": {\"result_count\": %zu},\n"
        "     \"ops_seconds\": %.3f}%s\n",
        r.shards, r.build_seconds, r.point_hits, r.point_mops,
        r.point_scaling, r.window_results, r.window_kqps, r.knn_results,
        r.knn_kqps, r.knn_visited_mean, r.join_matches, r.distance_matches,
        r.aggregate_count, r.ops_seconds, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace elsi

int main(int argc, char** argv) { return elsi::bench::Run(argc, argv); }
