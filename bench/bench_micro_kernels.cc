// Micro-benchmarks for the substrate kernels behind the Sec. VI cost terms:
// curve encoding (data preparation), KS distance (method extras), and FFN
// inference/training (T(n) and M(n)).

#include <algorithm>
#include <vector>

#include <benchmark/benchmark.h>

#include "common/cdf.h"
#include "common/random.h"
#include "curve/hilbert.h"
#include "curve/zorder.h"
#include "ml/ffn.h"

namespace elsi {
namespace {

void BM_MortonEncode(benchmark::State& state) {
  Rng rng(1);
  std::vector<uint32_t> xs(1024), ys(1024);
  for (size_t i = 0; i < xs.size(); ++i) {
    xs[i] = static_cast<uint32_t>(rng.NextUint64());
    ys[i] = static_cast<uint32_t>(rng.NextUint64());
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MortonEncode(xs[i & 1023], ys[i & 1023]));
    ++i;
  }
}
BENCHMARK(BM_MortonEncode);

void BM_HilbertEncode(benchmark::State& state) {
  Rng rng(2);
  std::vector<uint32_t> xs(1024), ys(1024);
  for (size_t i = 0; i < xs.size(); ++i) {
    xs[i] = static_cast<uint32_t>(rng.NextUint64());
    ys[i] = static_cast<uint32_t>(rng.NextUint64());
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(HilbertEncode(xs[i & 1023], ys[i & 1023], 32));
    ++i;
  }
}
BENCHMARK(BM_HilbertEncode);

void BM_KsDistanceFast(benchmark::State& state) {
  const size_t ns = static_cast<size_t>(state.range(0));
  const size_t n = 1 << 20;
  Rng rng(3);
  std::vector<double> small(ns), large(n);
  for (double& v : small) v = rng.NextDouble();
  for (double& v : large) v = rng.NextDouble();
  std::sort(small.begin(), small.end());
  std::sort(large.begin(), large.end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(KsDistanceFast(small, large));
  }
}
BENCHMARK(BM_KsDistanceFast)->Arg(256)->Arg(1024)->Arg(4096);

void BM_KsDistanceExact(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(4);
  std::vector<double> a(n), b(n);
  for (double& v : a) v = rng.NextDouble();
  for (double& v : b) v = rng.NextDouble();
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(KsDistance(a, b));
  }
}
BENCHMARK(BM_KsDistanceExact)->Arg(1 << 14)->Arg(1 << 17);

void BM_FfnInference(benchmark::State& state) {
  const Ffn net(1, {16}, 1, 5);
  double x = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.Predict1({x}));
    x += 1e-6;
  }
}
BENCHMARK(BM_FfnInference);

void BM_FfnTrainEpoch(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(6);
  Matrix x(n, 1), y(n, 1);
  for (size_t i = 0; i < n; ++i) {
    x.At(i, 0) = rng.NextDouble();
    y.At(i, 0) = x.At(i, 0);
  }
  Ffn net(1, {16}, 1, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.TrainStep(x, y, 0.01));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_FfnTrainEpoch)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

}  // namespace
}  // namespace elsi

BENCHMARK_MAIN();
