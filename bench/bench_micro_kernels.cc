// Micro-benchmarks for the substrate kernels behind the Sec. VI cost terms:
// curve encoding (data preparation), KS distance (method extras), and FFN
// inference/training (T(n) and M(n)) — plus a thread-scaling sweep of the
// parallel build pipeline. Results are mirrored to BENCH_parallel_build.json
// (google-benchmark JSON) for the scaling plots.
//
// After the google-benchmark suite, a custom sweep of the batched query path
// runs: tiled-vs-naive GEMM over representative shapes, and ZM point/window
// query throughput for the serial per-query loop vs batch-256 chunks on
// 1/2/4/8 worker threads. Results land in BENCH_query_path.json. Scale the
// query-path dataset with ELSI_QUERY_PATH_N (default 1,048,576 points).

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/cdf.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "curve/hilbert.h"
#include "curve/zorder.h"
#include "data/synthetic.h"
#include "data/workload.h"
#include "learned/zm_index.h"
#include "ml/ffn.h"
#include "ml/matrix.h"
#include "prof/sampler.h"
#include "simd/simd.h"

namespace elsi {
namespace {

void BM_MortonEncode(benchmark::State& state) {
  Rng rng(1);
  std::vector<uint32_t> xs(1024), ys(1024);
  for (size_t i = 0; i < xs.size(); ++i) {
    xs[i] = static_cast<uint32_t>(rng.NextUint64());
    ys[i] = static_cast<uint32_t>(rng.NextUint64());
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MortonEncode(xs[i & 1023], ys[i & 1023]));
    ++i;
  }
}
BENCHMARK(BM_MortonEncode);

void BM_HilbertEncode(benchmark::State& state) {
  Rng rng(2);
  std::vector<uint32_t> xs(1024), ys(1024);
  for (size_t i = 0; i < xs.size(); ++i) {
    xs[i] = static_cast<uint32_t>(rng.NextUint64());
    ys[i] = static_cast<uint32_t>(rng.NextUint64());
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(HilbertEncode(xs[i & 1023], ys[i & 1023], 32));
    ++i;
  }
}
BENCHMARK(BM_HilbertEncode);

void BM_KsDistanceFast(benchmark::State& state) {
  const size_t ns = static_cast<size_t>(state.range(0));
  const size_t n = 1 << 20;
  Rng rng(3);
  std::vector<double> small(ns), large(n);
  for (double& v : small) v = rng.NextDouble();
  for (double& v : large) v = rng.NextDouble();
  std::sort(small.begin(), small.end());
  std::sort(large.begin(), large.end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(KsDistanceFast(small, large));
  }
}
BENCHMARK(BM_KsDistanceFast)->Arg(256)->Arg(1024)->Arg(4096);

void BM_KsDistanceExact(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(4);
  std::vector<double> a(n), b(n);
  for (double& v : a) v = rng.NextDouble();
  for (double& v : b) v = rng.NextDouble();
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(KsDistance(a, b));
  }
}
BENCHMARK(BM_KsDistanceExact)->Arg(1 << 14)->Arg(1 << 17);

void BM_FfnInference(benchmark::State& state) {
  const Ffn net(1, {16}, 1, 5);
  double x = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.Predict1({x}));
    x += 1e-6;
  }
}
BENCHMARK(BM_FfnInference);

void BM_FfnTrainEpoch(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(6);
  Matrix x(n, 1), y(n, 1);
  for (size_t i = 0; i < n; ++i) {
    x.At(i, 0) = rng.NextDouble();
    y.At(i, 0) = x.At(i, 0);
  }
  Ffn net(1, {16}, 1, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.TrainStep(x, y, 0.01));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_FfnTrainEpoch)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

// --- parallel build thread scaling ---------------------------------------
//
// Full ZM build (key mapping + per-segment FFN training) on a dedicated
// pool of 1/2/4/8 workers. The build is bit-identical for every pool size
// (partition-derived model seeds), so the sweep isolates wall-clock scaling
// of the build pipeline. Dataset size defaults to 1M points; override with
// ELSI_SCALING_N for quick runs.

size_t ScalingN() {
  const char* value = std::getenv("ELSI_SCALING_N");
  if (value != nullptr && std::atoll(value) > 0) {
    return static_cast<size_t>(std::atoll(value));
  }
  return 1u << 20;
}

const Dataset& ScalingDataset() {
  static const Dataset* data =
      new Dataset(GenerateDataset(DatasetKind::kOsm1, ScalingN(), 42));
  return *data;
}

void BM_ParallelBuildZm(benchmark::State& state) {
  const Dataset& data = ScalingDataset();
  RankModelConfig model_cfg;
  model_cfg.hidden = {16};
  model_cfg.epochs = 40;
  model_cfg.seed = 42;
  for (auto _ : state) {
    ThreadPool pool(static_cast<size_t>(state.range(0)));
    ZmIndex::Config cfg;
    cfg.array.leaf_target = std::max<size_t>(5000, data.size() / 64);
    cfg.array.pool = &pool;
    ZmIndex index(std::make_shared<DirectTrainer>(model_cfg), cfg);
    index.Build(data);
    benchmark::DoNotOptimize(index.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
  state.counters["threads"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_ParallelBuildZm)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->UseRealTime();

// --- batched query path sweep --------------------------------------------
//
// Hand-rolled (Timer-based) so the output is one compact JSON document the
// CI perf-smoke step can archive, independent of google-benchmark's report
// format. Every row is also printed as a human-readable line.

size_t QueryPathN() {
  const char* value = std::getenv("ELSI_QUERY_PATH_N");
  if (value != nullptr && std::atoll(value) > 0) {
    return static_cast<size_t>(std::atoll(value));
  }
  return 1u << 20;
}

// Reference GEMM: the straightforward triple loop the tiled kernels in
// ml/matrix.cc replaced. Kept here (not in the library) purely as the
// baseline for the speedup column.
void NaiveGemmNN(const double* a, const double* b, double* c, size_t m,
                 size_t k, size_t n) {
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (size_t kk = 0; kk < k; ++kk) acc += a[i * k + kk] * b[kk * n + j];
      c[i * n + j] = acc;
    }
  }
}

struct GemmRow {
  size_t m, k, n;
  double naive_ns;
  double tiled_ns;
};

// Times one GEMM variant: repeats until ~20ms of work has accumulated and
// returns ns per call.
template <typename Fn>
double TimeGemm(const Fn& fn) {
  size_t reps = 1;
  for (;;) {
    Timer timer;
    for (size_t r = 0; r < reps; ++r) fn();
    const double micros = timer.ElapsedMicros();
    if (micros >= 20000.0 || reps >= (1u << 22)) {
      return micros * 1000.0 / static_cast<double>(reps);
    }
    reps *= 4;
  }
}

std::vector<GemmRow> SweepGemmShapes() {
  // Inference-shaped (skinny) and training-shaped (square-ish) products,
  // plus deliberately odd dimensions that exercise the edge kernels.
  const size_t shapes[][3] = {{1, 1, 16},    {1, 16, 16},   {1, 16, 1},
                              {256, 1, 16},  {256, 16, 16}, {256, 16, 1},
                              {512, 64, 64}, {128, 128, 128}, {37, 19, 53}};
  std::vector<GemmRow> rows;
  Rng rng(11);
  for (const auto& s : shapes) {
    const size_t m = s[0], k = s[1], n = s[2];
    std::vector<double> a(m * k), b(k * n), c(m * n);
    for (double& v : a) v = rng.NextDouble() - 0.5;
    for (double& v : b) v = rng.NextDouble() - 0.5;
    GemmRow row;
    row.m = m;
    row.k = k;
    row.n = n;
    row.naive_ns = TimeGemm([&] {
      NaiveGemmNN(a.data(), b.data(), c.data(), m, k, n);
      benchmark::DoNotOptimize(c.data());
    });
    row.tiled_ns = TimeGemm([&] {
      GemmNN(a.data(), b.data(), c.data(), m, k, n);
      benchmark::DoNotOptimize(c.data());
    });
    std::printf("gemm %4zux%3zux%3zu: naive %10.1f ns  tiled %10.1f ns  "
                "speedup %.2fx\n",
                m, k, n, row.naive_ns, row.tiled_ns,
                row.naive_ns / row.tiled_ns);
    rows.push_back(row);
  }
  return rows;
}

struct QueryRow {
  std::string query;  // "point" | "window"
  size_t batch;       // 0 = serial per-query loop.
  size_t threads;
  double avg_us;
  double checksum;  // Hits (point) / total results (window) — sanity only.
  // Per-phase hardware counter rates (0 on perf-denied hosts); context
  // columns in bench_diff, never gated.
  bench::PhaseCounterRates counters;
};

// --- per-ISA dispatch sweep ----------------------------------------------
//
// The same workloads timed once per dispatch level reachable on this host
// (plus a "best" alias row that always exists, so the checked-in baseline
// can gate on it regardless of which ISA the runner has). Level-specific
// rows (avx2/avx512/neon) are fresh-only extras the bench_diff gate
// ignores when the baseline machine lacked them.

struct SimdRow {
  std::string name;
  double ns = 0.0;                 // 0 when the row carries avg_us instead
  double avg_us = 0.0;
  double speedup_vs_scalar = 1.0;
  double checksum = -1.0;          // point-query rows only (exact-gated)
};

std::vector<SimdRow> SweepSimdGemm() {
  const size_t shapes[][3] = {
      {1, 16, 16},     // single-query inference layer
      {256, 16, 16},   // batched inference layer
      {512, 64, 64},   // training-shaped product
      {37, 19, 53},    // odd dims: edge kernels
  };
  std::vector<SimdRow> rows;
  Rng rng(21);
  for (const auto& s : shapes) {
    const size_t m = s[0], k = s[1], n = s[2];
    std::vector<double> a(m * k), b(k * n), c(m * n);
    for (double& v : a) v = rng.NextDouble() - 0.5;
    for (double& v : b) v = rng.NextDouble() - 0.5;
    double scalar_ns = 0.0;
    SimdRow best;
    for (const simd::Level level : simd::SupportedLevels()) {
      const simd::Kernels* kern = simd::ForLevel(level);
      SimdRow row;
      row.ns = TimeGemm([&] {
        kern->gemm_nn(a.data(), b.data(), c.data(), m, k, n);
        benchmark::DoNotOptimize(c.data());
      });
      if (level == simd::Level::kScalar) scalar_ns = row.ns;
      row.speedup_vs_scalar = scalar_ns / row.ns;
      char name[96];
      std::snprintf(name, sizeof(name), "gemm_%zux%zux%zu_%s", m, k, n,
                    simd::LevelName(level));
      row.name = name;
      std::printf("%-28s %12.1f ns  %5.2fx vs scalar\n", name, row.ns,
                  row.speedup_vs_scalar);
      best = row;  // SupportedLevels() ascends, so the last is the best.
      rows.push_back(row);
    }
    char name[96];
    std::snprintf(name, sizeof(name), "gemm_%zux%zux%zu_best", m, k, n);
    best.name = name;
    rows.push_back(best);
  }
  return rows;
}

// Batched point queries (batch 256, one thread) per dispatch level over an
// already-built index. Query *results* are level-independent (the compare
// kernels are exact), which the checksum column enforces bit-for-bit in
// the bench_diff gate; only the time may move.
std::vector<SimdRow> SweepSimdPointQuery(
    const ZmIndex& index, const std::vector<Point>& probes) {
  const simd::Level before = simd::ActiveLevel();
  std::vector<SimdRow> rows;
  double scalar_us = 0.0;
  SimdRow best;
  for (const simd::Level level : simd::SupportedLevels()) {
    if (!simd::ForceLevel(level)) continue;
    ThreadPool pool(1);
    BatchQueryOptions opts;
    opts.pool = &pool;
    opts.chunk = 256;
    std::vector<uint8_t> hit(probes.size(), 0);
    std::vector<Point> payload(probes.size());
    const auto run = [&] {
      index.PointQueryBatch(probes, hit, payload, opts);
    };
    run();  // warm-up (grows per-thread scratch under this level)
    double best_us = 0.0;
    for (size_t rep = 0; rep < 5; ++rep) {
      Timer timer;
      run();
      const double micros = timer.ElapsedMicros();
      if (rep == 0 || micros < best_us) best_us = micros;
    }
    SimdRow row;
    row.avg_us = best_us / static_cast<double>(probes.size());
    size_t found = 0;
    for (const uint8_t h : hit) found += h;
    row.checksum = static_cast<double>(found);
    if (level == simd::Level::kScalar) scalar_us = row.avg_us;
    row.speedup_vs_scalar = scalar_us / row.avg_us;
    row.name = std::string("point_batch256_") + simd::LevelName(level);
    std::printf("%-28s %9.3f us avg  %5.2fx vs scalar (checksum %.0f)\n",
                row.name.c_str(), row.avg_us, row.speedup_vs_scalar,
                row.checksum);
    best = row;
    rows.push_back(row);
  }
  simd::ForceLevel(before);
  best.name = "point_batch256_best";
  rows.push_back(best);
  return rows;
}

std::vector<QueryRow> SweepQueryPath(std::vector<SimdRow>* simd_point_rows) {
  const size_t n = QueryPathN();
  const Dataset data = GenerateDataset(DatasetKind::kOsm1, n, 42);
  RankModelConfig model_cfg;
  model_cfg.hidden = {16};
  model_cfg.epochs = 40;
  model_cfg.seed = 42;
  ZmIndex::Config cfg;
  cfg.array.leaf_target = std::max<size_t>(5000, n / 64);
  ZmIndex index(std::make_shared<DirectTrainer>(model_cfg), cfg);
  index.Build(data);

  const auto probes = SamplePointQueries(data, 4096, 43);
  const auto windows = SampleWindowQueries(data, 256, 0.0001, 44);
  const size_t kBatch = 256;
  std::vector<QueryRow> rows;

  const auto report = [&rows](const std::string& query, size_t batch,
                              size_t threads, double total_micros, size_t m,
                              double checksum,
                              const bench::PhaseCounterRates& counters) {
    QueryRow row;
    row.query = query;
    row.batch = batch;
    row.threads = threads;
    row.avg_us = total_micros / static_cast<double>(m);
    row.checksum = checksum;
    row.counters = counters;
    std::printf("%s query: batch %3zu threads %zu: %8.3f us avg "
                "(checksum %.0f, ipc %.2f, llc/op %.1f)\n",
                query.c_str(), batch, threads, row.avg_us, checksum,
                counters.ipc, counters.llc_miss_per_op);
    rows.push_back(row);
  };

  // Every row is the best of kReps runs (min is the usual noise filter for
  // microbenchmarks), and an untimed pass precedes each timed section so the
  // serial and batched paths are both measured warm — the first pass over a
  // cold index pays the key/point page-in cost whichever path runs first.
  const size_t kReps = 5;
  const auto best_of = [kReps](const auto& fn) {
    double best = 0.0;
    for (size_t rep = 0; rep < kReps; ++rep) {
      Timer timer;
      fn();
      const double micros = timer.ElapsedMicros();
      if (rep == 0 || micros < best) best = micros;
    }
    return best;
  };

  // Point queries: serial loop, then batch-256 chunks on 1/2/4/8 threads.
  // Each timed section is bracketed by a PhaseCounters Begin/End, so the
  // counter window covers exactly the kReps measured runs (ops = m * kReps).
  {
    size_t found = 0;
    const auto run = [&] {
      found = 0;
      for (const Point& q : probes) {
        if (index.PointQuery(q)) ++found;
      }
    };
    run();  // warm-up
    bench::PhaseCounters counters;
    counters.Begin();
    const double micros = best_of(run);
    report("point", 0, 1, micros, probes.size(), static_cast<double>(found),
           counters.End(probes.size() * kReps));
  }
  for (const size_t threads : {1u, 2u, 4u, 8u}) {
    bench::PhaseCounters counters;  // before the pool: inherit covers workers
    ThreadPool pool(threads);
    BatchQueryOptions opts;
    opts.pool = &pool;
    opts.chunk = kBatch;
    std::vector<uint8_t> hit(probes.size(), 0);
    std::vector<Point> payload(probes.size());
    const auto run = [&] { index.PointQueryBatch(probes, hit, payload, opts); };
    run();  // warm-up (also grows the per-thread scratch buffers)
    counters.Begin();
    const double micros = best_of(run);
    size_t found = 0;
    for (const uint8_t h : hit) found += h;
    report("point", kBatch, threads, micros, probes.size(),
           static_cast<double>(found), counters.End(probes.size() * kReps));
  }

  // Window queries: same sweep.
  {
    size_t hits = 0;
    const auto run = [&] {
      hits = 0;
      for (const Rect& w : windows) hits += index.WindowQuery(w).size();
    };
    run();  // warm-up
    bench::PhaseCounters counters;
    counters.Begin();
    const double micros = best_of(run);
    report("window", 0, 1, micros, windows.size(), static_cast<double>(hits),
           counters.End(windows.size() * kReps));
  }
  for (const size_t threads : {1u, 2u, 4u, 8u}) {
    bench::PhaseCounters counters;
    ThreadPool pool(threads);
    BatchQueryOptions opts;
    opts.pool = &pool;
    opts.chunk = kBatch;
    std::vector<std::vector<Point>> results(windows.size());
    const auto run = [&] { index.WindowQueryBatch(windows, results, opts); };
    run();  // warm-up
    counters.Begin();
    const double micros = best_of(run);
    size_t hits = 0;
    for (const auto& r : results) hits += r.size();
    report("window", kBatch, threads, micros, windows.size(),
           static_cast<double>(hits), counters.End(windows.size() * kReps));
  }

  // Per-dispatch-level batched point queries against the same index.
  *simd_point_rows = SweepSimdPointQuery(index, probes);
  return rows;
}

void WriteQueryPathJson(const std::string& path,
                        const std::vector<GemmRow>& gemm,
                        const std::vector<QueryRow>& queries,
                        const std::vector<SimdRow>& simd_gemm,
                        const std::vector<SimdRow>& simd_point, size_t n) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"dataset_n\": %zu,\n  \"gemm\": [\n", n);
  for (size_t i = 0; i < gemm.size(); ++i) {
    const GemmRow& r = gemm[i];
    std::fprintf(f,
                 "    {\"m\": %zu, \"k\": %zu, \"n\": %zu, "
                 "\"naive_ns\": %.1f, \"tiled_ns\": %.1f, "
                 "\"speedup\": %.3f}%s\n",
                 r.m, r.k, r.n, r.naive_ns, r.tiled_ns,
                 r.naive_ns / r.tiled_ns, i + 1 < gemm.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"queries\": [\n");
  for (size_t i = 0; i < queries.size(); ++i) {
    const QueryRow& r = queries[i];
    // ipc / llc_miss_per_op are context columns (0.0 on perf-denied hosts),
    // always emitted so baseline and fresh JSON pair field-for-field.
    std::fprintf(f,
                 "    {\"query\": \"%s\", \"batch\": %zu, \"threads\": %zu, "
                 "\"avg_us\": %.3f, \"checksum\": %.0f, "
                 "\"ipc\": %.3f, \"llc_miss_per_op\": %.2f}%s\n",
                 r.query.c_str(), r.batch, r.threads, r.avg_us, r.checksum,
                 r.counters.ipc, r.counters.llc_miss_per_op,
                 i + 1 < queries.size() ? "," : "");
  }
  // Per-ISA rows are keyed by name so the diff gate pairs baseline and
  // fresh rows by workload+level, not array position.
  std::fprintf(f, "  ],\n  \"simd\": {\n    \"gemm\": [\n");
  for (size_t i = 0; i < simd_gemm.size(); ++i) {
    const SimdRow& r = simd_gemm[i];
    std::fprintf(f,
                 "      {\"name\": \"%s\", \"gemm_ns\": %.1f, "
                 "\"speedup_vs_scalar\": %.3f}%s\n",
                 r.name.c_str(), r.ns, r.speedup_vs_scalar,
                 i + 1 < simd_gemm.size() ? "," : "");
  }
  std::fprintf(f, "    ],\n    \"point_query\": [\n");
  for (size_t i = 0; i < simd_point.size(); ++i) {
    const SimdRow& r = simd_point[i];
    std::fprintf(f,
                 "      {\"name\": \"%s\", \"avg_us\": %.3f, "
                 "\"speedup_vs_scalar\": %.3f, \"checksum\": %.0f}%s\n",
                 r.name.c_str(), r.avg_us, r.speedup_vs_scalar, r.checksum,
                 i + 1 < simd_point.size() ? "," : "");
  }
  std::fprintf(f, "    ]\n  }\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

void RunQueryPathSweep() {
  std::printf("\n--- batched query path sweep (ZM, n = %zu, simd = %s) ---\n",
              QueryPathN(), simd::ActiveLevelName());
  const auto gemm = SweepGemmShapes();
  const auto simd_gemm = SweepSimdGemm();
  std::vector<SimdRow> simd_point;
  const auto queries = SweepQueryPath(&simd_point);
  WriteQueryPathJson("BENCH_query_path.json", gemm, queries, simd_gemm,
                     simd_point, QueryPathN());
}

}  // namespace
}  // namespace elsi

// Custom main: mirror every result (the scaling sweep in particular) into
// BENCH_parallel_build.json unless the caller picked their own output file.
int main(int argc, char** argv) {
  // ELSI_BENCH_PROFILE_OUT=F profiles the whole run (google-benchmark suite
  // plus the query-path sweep) and writes collapsed stacks to F — the CI
  // prof job archives this as its flamegraph artifact.
  const char* profile_out = std::getenv("ELSI_BENCH_PROFILE_OUT");
  if (profile_out != nullptr && profile_out[0] != '\0') {
    std::string error;
    if (!elsi::prof::CpuProfiler::Get().Start(elsi::prof::ProfilerOptions{},
                                              &error)) {
      std::fprintf(stderr, "profiler not started: %s\n", error.c_str());
      profile_out = nullptr;
    }
  }
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out", 0) == 0) has_out = true;
  }
  static char out_flag[] = "--benchmark_out=BENCH_parallel_build.json";
  static char fmt_flag[] = "--benchmark_out_format=json";
  if (!has_out) {
    args.insert(args.begin() + 1, fmt_flag);
    args.insert(args.begin() + 1, out_flag);
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  elsi::RunQueryPathSweep();
  if (profile_out != nullptr && profile_out[0] != '\0') {
    elsi::prof::CpuProfiler::Get().Stop();
    std::string error;
    if (elsi::prof::WriteCollapsedProfile(profile_out, &error)) {
      std::printf("wrote %s\n", profile_out);
    } else {
      std::fprintf(stderr, "profile export failed: %s\n", error.c_str());
    }
  }
  return 0;
}
