// Micro-benchmarks for the substrate kernels behind the Sec. VI cost terms:
// curve encoding (data preparation), KS distance (method extras), and FFN
// inference/training (T(n) and M(n)) — plus a thread-scaling sweep of the
// parallel build pipeline. Results are mirrored to BENCH_parallel_build.json
// (google-benchmark JSON) for the scaling plots.

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "common/cdf.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "curve/hilbert.h"
#include "curve/zorder.h"
#include "data/synthetic.h"
#include "learned/zm_index.h"
#include "ml/ffn.h"

namespace elsi {
namespace {

void BM_MortonEncode(benchmark::State& state) {
  Rng rng(1);
  std::vector<uint32_t> xs(1024), ys(1024);
  for (size_t i = 0; i < xs.size(); ++i) {
    xs[i] = static_cast<uint32_t>(rng.NextUint64());
    ys[i] = static_cast<uint32_t>(rng.NextUint64());
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MortonEncode(xs[i & 1023], ys[i & 1023]));
    ++i;
  }
}
BENCHMARK(BM_MortonEncode);

void BM_HilbertEncode(benchmark::State& state) {
  Rng rng(2);
  std::vector<uint32_t> xs(1024), ys(1024);
  for (size_t i = 0; i < xs.size(); ++i) {
    xs[i] = static_cast<uint32_t>(rng.NextUint64());
    ys[i] = static_cast<uint32_t>(rng.NextUint64());
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(HilbertEncode(xs[i & 1023], ys[i & 1023], 32));
    ++i;
  }
}
BENCHMARK(BM_HilbertEncode);

void BM_KsDistanceFast(benchmark::State& state) {
  const size_t ns = static_cast<size_t>(state.range(0));
  const size_t n = 1 << 20;
  Rng rng(3);
  std::vector<double> small(ns), large(n);
  for (double& v : small) v = rng.NextDouble();
  for (double& v : large) v = rng.NextDouble();
  std::sort(small.begin(), small.end());
  std::sort(large.begin(), large.end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(KsDistanceFast(small, large));
  }
}
BENCHMARK(BM_KsDistanceFast)->Arg(256)->Arg(1024)->Arg(4096);

void BM_KsDistanceExact(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(4);
  std::vector<double> a(n), b(n);
  for (double& v : a) v = rng.NextDouble();
  for (double& v : b) v = rng.NextDouble();
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(KsDistance(a, b));
  }
}
BENCHMARK(BM_KsDistanceExact)->Arg(1 << 14)->Arg(1 << 17);

void BM_FfnInference(benchmark::State& state) {
  const Ffn net(1, {16}, 1, 5);
  double x = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.Predict1({x}));
    x += 1e-6;
  }
}
BENCHMARK(BM_FfnInference);

void BM_FfnTrainEpoch(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(6);
  Matrix x(n, 1), y(n, 1);
  for (size_t i = 0; i < n; ++i) {
    x.At(i, 0) = rng.NextDouble();
    y.At(i, 0) = x.At(i, 0);
  }
  Ffn net(1, {16}, 1, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.TrainStep(x, y, 0.01));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_FfnTrainEpoch)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

// --- parallel build thread scaling ---------------------------------------
//
// Full ZM build (key mapping + per-segment FFN training) on a dedicated
// pool of 1/2/4/8 workers. The build is bit-identical for every pool size
// (partition-derived model seeds), so the sweep isolates wall-clock scaling
// of the build pipeline. Dataset size defaults to 1M points; override with
// ELSI_SCALING_N for quick runs.

size_t ScalingN() {
  const char* value = std::getenv("ELSI_SCALING_N");
  if (value != nullptr && std::atoll(value) > 0) {
    return static_cast<size_t>(std::atoll(value));
  }
  return 1u << 20;
}

const Dataset& ScalingDataset() {
  static const Dataset* data =
      new Dataset(GenerateDataset(DatasetKind::kOsm1, ScalingN(), 42));
  return *data;
}

void BM_ParallelBuildZm(benchmark::State& state) {
  const Dataset& data = ScalingDataset();
  RankModelConfig model_cfg;
  model_cfg.hidden = {16};
  model_cfg.epochs = 40;
  model_cfg.seed = 42;
  for (auto _ : state) {
    ThreadPool pool(static_cast<size_t>(state.range(0)));
    ZmIndex::Config cfg;
    cfg.array.leaf_target = std::max<size_t>(5000, data.size() / 64);
    cfg.array.pool = &pool;
    ZmIndex index(std::make_shared<DirectTrainer>(model_cfg), cfg);
    index.Build(data);
    benchmark::DoNotOptimize(index.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
  state.counters["threads"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_ParallelBuildZm)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->UseRealTime();

}  // namespace
}  // namespace elsi

// Custom main: mirror every result (the scaling sweep in particular) into
// BENCH_parallel_build.json unless the caller picked their own output file.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out", 0) == 0) has_out = true;
  }
  static char out_flag[] = "--benchmark_out=BENCH_parallel_build.json";
  static char fmt_flag[] = "--benchmark_out_format=json";
  if (!has_out) {
    args.insert(args.begin() + 1, fmt_flag);
    args.insert(args.begin() + 1, out_flag);
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
