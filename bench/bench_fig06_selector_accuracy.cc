// Reproduces Fig. 6: accuracy of the method selector.
//  (a) vs the scorer-training cardinality cap u (paper: 10^4..10^8; here the
//      scaled grid of the bench campaign).
//  (b) vs lambda, comparing the FFN scorer with RFR/RFC/DTR/DTC baselines.
// Accuracy = fraction of ground-truth data sets where the selector picks the
// measured Eq. 2 argmin.

#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "core/method_selector.h"
#include "core/scorer_trainer.h"

namespace elsi {
namespace bench {
namespace {

void RunPartA(const ScorerTrainingData& data) {
  std::printf("\nFig. 6(a): selector accuracy vs training cardinality cap u\n");
  std::printf("(scorer trained only on data sets with log10(n) <= u)\n\n");
  // Distinct cardinality levels in the campaign.
  std::vector<double> levels;
  for (const ScorerDatasetGroup& g : data.groups) {
    if (std::find(levels.begin(), levels.end(), g.log10_n) == levels.end()) {
      levels.push_back(g.log10_n);
    }
  }
  std::sort(levels.begin(), levels.end());

  const double lambda = 0.8;
  Table table({"u (log10 n cap)", "training sets", "accuracy", "accuracy (25% tol)"});
  for (double u : levels) {
    std::vector<ScorerSample> subset;
    for (const ScorerSample& s : data.samples) {
      if (s.log10_n <= u + 1e-9) subset.push_back(s);
    }
    auto scorer = std::make_shared<MethodScorer>();
    scorer->Train(subset);
    ScorerSelector selector(scorer, lambda, 1.0);
    const double strict = SelectorAccuracy(&selector, data, lambda, 1.0);
    const double tol = SelectorAccuracy(&selector, data, lambda, 1.0, 0.25);
    table.AddRow({FormatRatio(u), std::to_string(subset.size()),
                  FormatRatio(strict), FormatRatio(tol)});
  }
  table.Print();
}

void RunPartB(const ScorerTrainingData& data) {
  std::printf("\nFig. 6(b): selector accuracy vs lambda, FFN vs RF/DT\n\n");
  auto ffn_scorer = std::make_shared<MethodScorer>();
  ffn_scorer->Train(data.samples);

  Table table({"lambda", "FFN", "RFR", "RFC", "DTR", "DTC"});
  for (double lambda = 0.1; lambda <= 1.001; lambda += 0.1) {
    ScorerSelector ffn(ffn_scorer, lambda, 1.0);
    TreeSelector rfr(TreeSelector::Model::kRandomForest,
                     TreeSelector::Mode::kRegression, lambda, 1.0);
    TreeSelector rfc(TreeSelector::Model::kRandomForest,
                     TreeSelector::Mode::kClassification, lambda, 1.0);
    TreeSelector dtr(TreeSelector::Model::kDecisionTree,
                     TreeSelector::Mode::kRegression, lambda, 1.0);
    TreeSelector dtc(TreeSelector::Model::kDecisionTree,
                     TreeSelector::Mode::kClassification, lambda, 1.0);
    rfr.Train(data.samples);
    rfc.Train(data.samples);
    dtr.Train(data.samples);
    dtc.Train(data.samples);
    const double tol = 0.25;  // Near-tie tolerance; see EXPERIMENTS.md.
    table.AddRow({FormatRatio(lambda),
                  FormatRatio(SelectorAccuracy(&ffn, data, lambda, 1.0, tol)),
                  FormatRatio(SelectorAccuracy(&rfr, data, lambda, 1.0, tol)),
                  FormatRatio(SelectorAccuracy(&rfc, data, lambda, 1.0, tol)),
                  FormatRatio(SelectorAccuracy(&dtr, data, lambda, 1.0, tol)),
                  FormatRatio(SelectorAccuracy(&dtc, data, lambda, 1.0, tol))});
  }
  table.Print();
  std::printf(
      "\nExpected shape (paper): FFN >= tree baselines, accuracy dips around\n"
      "lambda ~0.6 where build and query costs weigh equally, and rises for\n"
      "large lambda where the cheap-build methods separate clearly.\n");
}

void Run() {
  PrintBanner("bench_fig06_selector_accuracy",
              "Fig. 6(a)/(b) — method selector accuracy");
  const ScorerTrainingData& data = GetBenchScorerData();
  std::printf("ground truth: %zu data sets x %zu methods\n",
              data.groups.size(),
              data.groups.empty() ? 0 : data.groups.front().costs.size());
  RunPartA(data);
  RunPartB(data);
}

}  // namespace
}  // namespace bench
}  // namespace elsi

int main(int argc, char** argv) {
  elsi::bench::InitBenchThreads(argc, argv);
  elsi::bench::Run();
  return 0;
}
