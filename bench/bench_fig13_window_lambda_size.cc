// Reproduces Fig. 13: window query time (a) vs lambda and (b) vs window
// size (0.0006%..0.16% of the space) on OSM1.

#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "data/workload.h"

namespace elsi {
namespace bench {
namespace {

void Run() {
  PrintBanner("bench_fig13_window_lambda_size",
              "Fig. 13 — window query vs lambda and window size (OSM1)");
  const size_t n = BenchN();
  const size_t window_count = FullMode() ? 1000 : 300;
  const Dataset data = GenerateDataset(DatasetKind::kOsm1, n, BenchSeed());

  // (a) lambda sweep at the default window size.
  {
    const auto windows =
        SampleWindowQueries(data, window_count, 0.0001, BenchSeed() + 11);
    const auto truths = WindowTruths(data, windows);
    auto rstar = MakeTraditionalIndex("RR*");
    rstar->Build(data);
    const auto rstar_result = MeasureWindowQuery(*rstar, windows, truths);
    std::printf("\n(a) window query time vs lambda (0.01%% windows)\n");
    std::printf("reference: RR* %s\n\n",
                FormatMicros(rstar_result.first).c_str());
    Table table({"lambda", "ML-F", "RSMI-F", "LISA-F"});
    for (double lambda = 0.0; lambda <= 1.001; lambda += 0.2) {
      std::vector<std::string> row = {FormatRatio(lambda)};
      for (BaseIndexKind base :
           {BaseIndexKind::kML, BaseIndexKind::kRSMI, BaseIndexKind::kLISA}) {
        auto bundle = MakeLearnedIndex({base, true}, n, lambda);
        bundle.index->Build(data);
        row.push_back(FormatMicros(
            MeasureWindowQuery(*bundle.index, windows, truths).first));
      }
      table.AddRow(row);
    }
    table.Print();
  }

  // (b) window size sweep at the default lambda.
  {
    std::printf("\n(b) window query time vs window size (lambda = 0.8)\n\n");
    const double lambda = 0.8;
    auto rstar = MakeTraditionalIndex("RR*");
    rstar->Build(data);
    auto rsmi_og = MakeLearnedIndex({BaseIndexKind::kRSMI, false}, n, lambda);
    rsmi_og.index->Build(data);
    std::vector<LearnedIndexBundle> bundles;
    std::vector<std::string> labels = {"ML-F", "RSMI-F", "LISA-F"};
    for (BaseIndexKind base :
         {BaseIndexKind::kML, BaseIndexKind::kRSMI, BaseIndexKind::kLISA}) {
      bundles.push_back(MakeLearnedIndex({base, true}, n, lambda));
      bundles.back().index->Build(data);
    }
    Table table({"window size", "RR*", "RSMI", "ML-F", "RSMI-F", "LISA-F"});
    for (double frac : {0.000006, 0.000025, 0.0001, 0.0004, 0.0016}) {
      const auto windows =
          SampleWindowQueries(data, window_count, frac, BenchSeed() + 13);
      const auto truths = WindowTruths(data, windows);
      std::vector<std::string> row;
      char label[32];
      std::snprintf(label, sizeof(label), "%.4f%%", frac * 100);
      row.push_back(label);
      row.push_back(
          FormatMicros(MeasureWindowQuery(*rstar, windows, truths).first));
      row.push_back(FormatMicros(
          MeasureWindowQuery(*rsmi_og.index, windows, truths).first));
      for (auto& bundle : bundles) {
        row.push_back(FormatMicros(
            MeasureWindowQuery(*bundle.index, windows, truths).first));
      }
      table.AddRow(row);
    }
    table.Print();
  }
  std::printf(
      "\nExpected shape (paper Fig. 13): times grow with window size for\n"
      "every index; the -F indices grow no faster than RR* or RSMI without\n"
      "ELSI, and the lambda sweep moves them only slowly.\n");
}

}  // namespace
}  // namespace bench
}  // namespace elsi

int main(int argc, char** argv) {
  elsi::bench::InitBenchThreads(argc, argv);
  elsi::bench::Run();
  return 0;
}
