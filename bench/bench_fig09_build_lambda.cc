// Reproduces Fig. 9: build time of the ELSI-based indices vs lambda, on
// Skewed and OSM1. RR* and RSMI-without-ELSI appear as reference rows (they
// do not depend on lambda).

#include <cstdio>
#include <memory>

#include "bench_util.h"

namespace elsi {
namespace bench {
namespace {

void RunDataset(DatasetKind kind, size_t n) {
  const Dataset data = GenerateDataset(kind, n, BenchSeed());
  std::printf("\n--- %s ---\n", DatasetKindName(kind).c_str());

  {
    auto rstar = MakeTraditionalIndex("RR*");
    const double t = MeasureBuildSeconds(rstar.get(), data);
    auto bundle = MakeLearnedIndex({BaseIndexKind::kRSMI, false}, n, 0.8);
    const double t_rsmi = MeasureBuildSeconds(bundle.index.get(), data);
    std::printf("reference: RR* %s, RSMI (no ELSI) %s\n",
                FormatSeconds(t).c_str(), FormatSeconds(t_rsmi).c_str());
  }

  Table table({"lambda", "ML-F", "RSMI-F", "LISA-F"});
  for (double lambda = 0.0; lambda <= 1.001; lambda += 0.2) {
    std::vector<std::string> row = {FormatRatio(lambda)};
    for (BaseIndexKind kind2 :
         {BaseIndexKind::kML, BaseIndexKind::kRSMI, BaseIndexKind::kLISA}) {
      auto bundle = MakeLearnedIndex({kind2, true}, n, lambda);
      row.push_back(
          FormatSeconds(MeasureBuildSeconds(bundle.index.get(), data)));
    }
    table.AddRow(row);
  }
  table.Print();
}

void Run() {
  PrintBanner("bench_fig09_build_lambda", "Fig. 9 — build time vs lambda");
  const size_t n = BenchN();
  RunDataset(DatasetKind::kSkewed, n);
  RunDataset(DatasetKind::kOsm1, n);
  std::printf(
      "\nExpected shape (paper Fig. 9): build times fall as lambda rises\n"
      "(the selector shifts to build-cheap methods, MR most frequent at\n"
      "lambda >= 0.8); even at small lambda the -F builds stay far below\n"
      "RSMI without ELSI.\n");
}

}  // namespace
}  // namespace bench
}  // namespace elsi

int main(int argc, char** argv) {
  elsi::bench::InitBenchThreads(argc, argv);
  elsi::bench::Run();
  return 0;
}
