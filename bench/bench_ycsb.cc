// bench_ycsb — YCSB-style concurrent mixed workloads over the lock-free
// serving layer (no paper figure; see DESIGN.md "Concurrent serving").
//
// Load phase builds a Grid base at bench cardinality inside a
// ConcurrentIndex; the run phase drives T client threads through a
// deterministic per-thread op stream (Xoshiro seeded from the bench seed
// and the thread id) at two mixes:
//
//   read95 — 95% point reads of loaded keys, 5% inserts (YCSB-B shape),
//   read50 — 50/50 (YCSB-A shape).
//
// Reads probe keys that are guaranteed loaded, so every read must hit:
// the hit count doubles as a correctness checksum and is bit-stable
// across machines and thread counts. Inserts use disjoint per-thread id
// ranges. Reported per (mix, threads): throughput in Mops/s and the
// scaling speedup vs the single-threaded row of the same mix.
//
// A final swap phase hammers point reads from 3 threads while the main
// thread repeatedly rebuild-swaps the base (ReplaceBase), reporting the
// reader p99/max latency — the "no reader stall" number (DESIGN.md bar:
// p99 < 10 ms on idle hardware).
//
// Writes BENCH_concurrent.json (override with ELSI_BENCH_YCSB_OUT) for
// the bench_diff gate. The client-thread sweep is fixed at {1, 2, 4} so
// the JSON rows match the checked-in baseline on any host; override with
// ELSI_BENCH_YCSB_THREADS=1,2,4,8 for local scaling studies (extra rows
// are ignored by the gate). `--threads` scales the build pool as in every
// other bench.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "common/timer.h"
#include "core/concurrent_index.h"
#include "data/synthetic.h"
#include "persist/snapshot.h"

namespace elsi {
namespace bench {
namespace {

std::unique_ptr<concurrent::ConcurrentIndex> MakeServing(
    const Dataset& data, size_t merge_threshold) {
  persist::SnapshotLoadOptions load_opts;
  auto base = persist::MakeIndexByName("Grid", load_opts);
  base->Build(data);
  concurrent::ConcurrentIndexConfig cfg;
  cfg.merge_threshold = merge_threshold;
  return std::make_unique<concurrent::ConcurrentIndex>(
      std::move(base),
      [load_opts]() { return persist::MakeIndexByName("Grid", load_opts); },
      cfg);
}

struct MixRow {
  std::string name;
  size_t threads = 0;
  size_t ops = 0;
  size_t reads = 0;
  size_t inserts = 0;
  PhaseCounterRates counters;  // context columns; 0 on perf-denied hosts
  size_t hits = 0;  // Must equal reads: every probed key is loaded.
  double mops = 0.0;
  double scaling = 1.0;
};

/// One (mix, thread-count) cell: a fresh serving index, T deterministic
/// client streams, wall-clock over the whole batch.
MixRow RunMix(const Dataset& data, const std::string& mix_name,
              double read_fraction, size_t threads, size_t ops_per_thread,
              uint64_t seed) {
  auto index = MakeServing(data, /*merge_threshold=*/8192);
  std::vector<size_t> reads(threads, 0), hits(threads, 0);
  std::atomic<bool> go{false};
  // Opened before the workers spawn so the inherit-scope counters cover
  // every client stream; the counted window starts at the `go` flip.
  PhaseCounters counters;
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(seed * 1000 + t * 7919 + 13);
      while (!go.load(std::memory_order_acquire)) {
      }
      size_t local_reads = 0, local_hits = 0;
      for (size_t i = 0; i < ops_per_thread; ++i) {
        if (rng.NextDouble() < read_fraction) {
          const Point& q = data[rng.NextBelow(data.size())];
          Point out;
          local_hits += index->PointQuery(q, &out) ? 1u : 0u;
          ++local_reads;
        } else {
          const uint64_t id = 1000000 + t * ops_per_thread + i;
          index->Insert({rng.NextDouble(), rng.NextDouble(), id});
        }
      }
      reads[t] = local_reads;
      hits[t] = local_hits;
    });
  }
  Timer timer;
  counters.Begin();
  go.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();
  const double seconds = timer.ElapsedSeconds();

  MixRow row;
  row.name = mix_name;
  row.threads = threads;
  row.ops = threads * ops_per_thread;
  for (size_t t = 0; t < threads; ++t) {
    row.reads += reads[t];
    row.hits += hits[t];
  }
  row.inserts = row.ops - row.reads;
  row.mops = static_cast<double>(row.ops) / seconds / 1e6;
  row.counters = counters.End(row.ops);
  return row;
}

struct SwapResult {
  size_t swaps = 0;
  size_t reader_queries = 0;
  double p99_us = 0.0;
  double max_us = 0.0;
  double swap_ms_avg = 0.0;
};

/// Readers hammer point queries while the main thread repeatedly
/// rebuild-swaps the base. Per-query latencies prove readers never block
/// on the swap.
SwapResult RunSwapPhase(const Dataset& data, uint64_t seed) {
  auto index = MakeServing(data, /*merge_threshold=*/0);
  constexpr size_t kReaders = 3;
  constexpr size_t kSwaps = 6;
  std::atomic<bool> go{false}, stop{false};
  std::vector<std::vector<double>> latencies(kReaders);
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (size_t t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(seed * 77 + t);
      auto& local = latencies[t];
      local.reserve(1 << 16);
      while (!go.load(std::memory_order_acquire)) {
      }
      while (!stop.load(std::memory_order_acquire)) {
        const Point& q = data[rng.NextBelow(data.size())];
        Point out;
        Timer timer;
        index->PointQuery(q, &out);
        local.push_back(timer.ElapsedSeconds() * 1e6);
      }
    });
  }
  go.store(true, std::memory_order_release);
  Timer swap_timer;
  persist::SnapshotLoadOptions load_opts;
  for (size_t s = 0; s < kSwaps; ++s) {
    auto fresh = persist::MakeIndexByName("Grid", load_opts);
    fresh->Build(data);
    index->ReplaceBase(std::move(fresh));
  }
  const double swap_s = swap_timer.ElapsedSeconds();
  stop.store(true, std::memory_order_release);
  for (auto& r : readers) r.join();

  std::vector<double> all;
  for (const auto& local : latencies) {
    all.insert(all.end(), local.begin(), local.end());
  }
  SwapResult result;
  result.swaps = kSwaps;
  result.reader_queries = all.size();
  result.swap_ms_avg = swap_s * 1e3 / kSwaps;
  if (!all.empty()) {
    std::sort(all.begin(), all.end());
    const size_t p99 = std::min(all.size() - 1, (all.size() * 99) / 100);
    result.p99_us = all[p99];
    result.max_us = all.back();
  }
  return result;
}

std::vector<size_t> ThreadSweep() {
  const char* env = std::getenv("ELSI_BENCH_YCSB_THREADS");
  if (env == nullptr || env[0] == '\0') return {1, 2, 4};
  std::vector<size_t> sweep;
  size_t value = 0;
  for (const char* p = env;; ++p) {
    if (*p >= '0' && *p <= '9') {
      value = value * 10 + static_cast<size_t>(*p - '0');
    } else {
      if (value > 0) sweep.push_back(value);
      value = 0;
      if (*p == '\0') break;
    }
  }
  return sweep.empty() ? std::vector<size_t>{1, 2, 4} : sweep;
}

int Run(int argc, char** argv) {
  InitBenchThreads(argc, argv);
  PrintBanner("bench_ycsb",
              "concurrent serving: YCSB-style mixed workloads");

  const size_t n = BenchN();
  const uint64_t seed = BenchSeed();
  const size_t ops_per_thread = FullMode() ? 200000 : 40000;
  const Dataset data = GenerateDataset(DatasetKind::kUniform, n, seed);
  const std::vector<size_t> sweep = ThreadSweep();

  struct Mix {
    const char* name;
    double read_fraction;
  };
  const Mix mixes[] = {{"read95", 0.95}, {"read50", 0.50}};

  std::vector<MixRow> rows;
  Table table({"mix", "threads", "ops", "hits", "Mops/s", "scaling"});
  for (const Mix& mix : mixes) {
    double base_mops = 0.0;
    for (const size_t threads : sweep) {
      MixRow row =
          RunMix(data, mix.name, mix.read_fraction, threads, ops_per_thread,
                 seed);
      if (row.hits != row.reads) {
        std::fprintf(stderr, "%s/threads=%zu: %zu of %zu reads missed\n",
                     mix.name, threads, row.reads - row.hits, row.reads);
        return 1;
      }
      if (base_mops == 0.0) base_mops = row.mops;
      row.scaling = row.mops / base_mops;
      table.AddRow({row.name, std::to_string(row.threads),
                    std::to_string(row.ops), std::to_string(row.hits),
                    FormatRatio(row.mops), FormatRatio(row.scaling) + "x"});
      rows.push_back(std::move(row));
    }
  }

  const SwapResult swap = RunSwapPhase(data, seed);
  table.AddRow({"swap-p99", "3", std::to_string(swap.reader_queries),
                std::to_string(swap.swaps) + " swaps",
                FormatMicros(swap.p99_us), FormatMicros(swap.max_us)});
  table.Print();

  const char* env_out = std::getenv("ELSI_BENCH_YCSB_OUT");
  const std::string out = (env_out != nullptr && env_out[0] != '\0')
                              ? env_out
                              : "BENCH_concurrent.json";
  std::FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"n\": %zu,\n"
               "  \"seed\": %llu,\n"
               "  \"ops_per_thread\": %zu,\n"
               "  \"mixes\": [\n",
               n, static_cast<unsigned long long>(seed), ops_per_thread);
  for (size_t i = 0; i < rows.size(); ++i) {
    const MixRow& row = rows[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"threads\": %zu, \"ops\": %zu, "
                 "\"reads\": %zu, \"inserts\": %zu, \"checksum\": %zu, "
                 "\"throughput_mops\": %.3f, \"scaling_speedup\": %.3f, "
                 "\"ipc\": %.3f, \"llc_miss_per_op\": %.2f}%s\n",
                 row.name.c_str(), row.threads, row.ops, row.reads,
                 row.inserts, row.hits, row.mops, row.scaling,
                 row.counters.ipc, row.counters.llc_miss_per_op,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n"
               "  \"swap\": {\"swaps\": %zu, \"reader_queries\": %zu, "
               "\"swap_ms_avg\": %.3f, \"reader_p99_us\": %.3f, "
               "\"reader_max_us\": %.3f}\n"
               "}\n",
               swap.swaps, swap.reader_queries, swap.swap_ms_avg, swap.p99_us,
               swap.max_us);
  std::fclose(f);
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace elsi

int main(int argc, char** argv) { return elsi::bench::Run(argc, argv); }
