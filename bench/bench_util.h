#ifndef ELSI_BENCH_BENCH_UTIL_H_
#define ELSI_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/spatial_index.h"
#include "core/elsi.h"
#include "data/synthetic.h"
#include "prof/counters.h"

namespace elsi {
namespace bench {

/// Data-set cardinality for figure benches. Defaults to 50,000 (the paper
/// runs 1e8-point GPU jobs; see EXPERIMENTS.md). Override with ELSI_BENCH_N;
/// ELSI_BENCH_FULL=1 raises it to 500,000.
size_t BenchN();

/// Whether ELSI_BENCH_FULL=1 is set (larger sweeps).
bool FullMode();

/// Global deterministic bench seed (override with ELSI_BENCH_SEED).
uint64_t BenchSeed();

/// Applies the worker-thread knob to the global pool: the `--threads N`
/// (or `--threads=N`) flag when present, else ELSI_BENCH_THREADS, else the
/// hardware default. Call first thing in every bench main; builds are
/// bit-identical across thread counts (see DESIGN.md), so this trades
/// wall-clock only. Also records the `--batch N` (or `--batch=N`,
/// ELSI_BENCH_BATCH) knob read back by BenchBatch(), and registers an
/// atexit obs export when `--metrics-out=F` / `--trace-out=F` (or
/// ELSI_BENCH_METRICS_OUT / ELSI_BENCH_TRACE_OUT) is given: the metrics
/// snapshot is written as JSON and the trace as Chrome trace_event JSON
/// when the bench exits. `--profile-out=F` (or ELSI_BENCH_PROFILE_OUT)
/// additionally runs the elsi::prof sampling profiler over the whole bench
/// and writes collapsed stacks (flamegraph input) to F at exit.
void InitBenchThreads(int argc, char** argv);

/// Query batch size from `--batch N` / ELSI_BENCH_BATCH; 0 (the default)
/// keeps the serial per-query measurement loops. When > 0 the Measure*
/// helpers below route through the batched query path (PointQueryBatch et
/// al.) with this chunk size on the global pool — answers are identical to
/// the serial loop (see DESIGN.md "Batched predict-and-scan").
size_t BenchBatch();

/// FFN settings used by every learned index in the benches (the paper's
/// 500-epoch GPU setting scaled for CPU; override epochs with
/// ELSI_BENCH_EPOCHS).
RankModelConfig BenchModelConfig();

/// Method parameters scaled so |Ds|/n ratios match the paper's defaults at
/// bench cardinality (rho, C, eps, beta, eta; Sec. VII-D).
BuildProcessorConfig BenchProcessorConfig(size_t n);

/// Structural scale for the learned indices at cardinality n.
BaseIndexScale BenchScale(size_t n);

/// Names the learned-index variant rows used across the figures.
struct LearnedVariant {
  BaseIndexKind kind;
  bool with_elsi;  // "-F" suffix when true.
  std::string Label() const {
    return BaseIndexKindName(kind) + (with_elsi ? "-F" : "");
  }
};

/// Builds a learned index (OG or ELSI-driven). When `with_elsi`, the given
/// selector drives the build processor (pass null to get the ScorerSelector
/// trained by GetBenchScorer with the given lambda).
struct LearnedIndexBundle {
  std::unique_ptr<SpatialIndex> index;
  std::shared_ptr<BuildProcessor> processor;  // Null for OG.
};
LearnedIndexBundle MakeLearnedIndex(const LearnedVariant& variant, size_t n,
                                    double lambda,
                                    std::shared_ptr<MethodSelector> selector =
                                        nullptr);

/// The four traditional competitors by name ("Grid", "KDB", "HRR", "RR*").
std::unique_ptr<SpatialIndex> MakeTraditionalIndex(const std::string& name);

/// A method scorer trained on a measured campaign, cached across bench
/// binaries in <ELSI_CACHE_DIR or .>/elsi_scorer_cache.bin — a versioned,
/// checksummed binary file (delete it to re-measure). A legacy
/// elsi_scorer_cache.csv is imported and converted once when present.
std::shared_ptr<const MethodScorer> GetBenchScorer();

/// The cached measurement campaign itself (Fig. 6 needs the raw groups).
const ScorerTrainingData& GetBenchScorerData();

/// A rebuild predictor trained on the simulated update campaign, cached in
/// <ELSI_CACHE_DIR or .>/elsi_rebuild_cache.bin (same format and legacy CSV
/// import as the scorer cache).
std::shared_ptr<const RebuildPredictor> GetBenchRebuildPredictor();

// --- hardware counter helpers ---------------------------------------------

/// Derived per-phase counter rates for the bench JSON columns. Zero (with
/// `hardware` false) when hardware counters are unavailable — emitted
/// anyway so baseline and fresh JSON always pair field-for-field.
struct PhaseCounterRates {
  double ipc = 0.0;
  double llc_miss_per_op = 0.0;
  double branch_miss_per_op = 0.0;
  bool hardware = false;
};

/// Whole-phase counter capture: construct BEFORE spawning the phase's
/// worker threads (inherit-scope perf events only cover threads created
/// after the open), Begin() after warmup, End(ops) after the timed section.
class PhaseCounters {
 public:
  PhaseCounters();
  void Begin();
  PhaseCounterRates End(uint64_t ops);

 private:
  std::unique_ptr<prof::CounterGroup> group_;
  prof::CounterValues start_;
};

// --- timing helpers -------------------------------------------------------

double MeasureBuildSeconds(SpatialIndex* index, const Dataset& data);
double MeasurePointQueryMicros(const SpatialIndex& index,
                               const std::vector<Point>& queries);

/// Ground truths computed once per (data set, workload) and shared across
/// the indices of a figure.
std::vector<std::vector<Point>> WindowTruths(const Dataset& data,
                                             const std::vector<Rect>& windows);
std::vector<std::vector<Point>> KnnTruths(const Dataset& data,
                                          const std::vector<Point>& queries,
                                          size_t k);

/// Returns (avg micros, avg recall) over the window workload.
std::pair<double, double> MeasureWindowQuery(
    const SpatialIndex& index, const std::vector<Rect>& windows,
    const std::vector<std::vector<Point>>& truths);
std::pair<double, double> MeasureKnnQuery(
    const SpatialIndex& index, const std::vector<Point>& queries, size_t k,
    const std::vector<std::vector<Point>>& truths);

// --- table printing -------------------------------------------------------

/// Prints "| a | b | ... |" rows with a header rule, markdown style.
class Table {
 public:
  explicit Table(std::vector<std::string> columns);
  void AddRow(const std::vector<std::string>& cells);
  void Print() const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

std::string FormatSeconds(double seconds);
std::string FormatMicros(double micros);
std::string FormatRatio(double value);

/// Prints the standard bench banner (binary name, n, seed, mode).
void PrintBanner(const std::string& name, const std::string& paper_ref);

}  // namespace bench
}  // namespace elsi

#endif  // ELSI_BENCH_BENCH_UTIL_H_
