// bench_persist — persistence subsystem timings (no paper figure; see
// DESIGN.md "Persistence & recovery").
//
// Reports, for a ZM index at bench cardinality:
//   * cold build (full model training) vs snapshot save + restore,
//   * the restore speedup (the acceptance bar is >= 10x),
//   * WAL append latency under group commit and replay throughput.
//
// Writes the same numbers as JSON to BENCH_persist.json (override with
// ELSI_BENCH_PERSIST_OUT) so CI can archive and gate on them.

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "bench_util.h"
#include "common/timer.h"
#include "data/synthetic.h"
#include "persist/snapshot.h"
#include "persist/wal.h"

namespace elsi {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  InitBenchThreads(argc, argv);
  PrintBanner("bench_persist", "persistence: snapshot restore vs cold build");

  const size_t n = BenchN();
  const Dataset data = GenerateDataset(DatasetKind::kOsm1, n, BenchSeed());
  const std::string dir = "bench_persist_tmp";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string snap_path = dir + "/snapshot.snap";

  // Cold build: the full pipeline including model training (OG / direct).
  LearnedIndexBundle cold =
      MakeLearnedIndex({BaseIndexKind::kZM, false}, n, 0.5, nullptr);
  const double cold_build_s = MeasureBuildSeconds(cold.index.get(), data);

  double save_s = 0.0;
  {
    Timer t;
    if (!persist::Snapshot::Save(*cold.index, snap_path)) {
      std::fprintf(stderr, "snapshot save failed\n");
      return 1;
    }
    save_s = t.ElapsedSeconds();
  }
  const uintmax_t snapshot_bytes = std::filesystem::file_size(snap_path);

  double restore_s = 0.0;
  {
    Timer t;
    auto restored = persist::Snapshot::Load(snap_path);
    restore_s = t.ElapsedSeconds();
    if (restored == nullptr || restored->size() != data.size()) {
      std::fprintf(stderr, "snapshot restore failed\n");
      return 1;
    }
  }
  const double speedup = cold_build_s / restore_s;

  // WAL: group-committed appends, then a full replay of what was written.
  const size_t wal_records = 10000;
  persist::WalWriterOptions wal_opts;
  wal_opts.fsync_every = 64;
  double append_s = 0.0;
  {
    persist::WalWriter wal;
    if (!wal.Open(dir, 1, wal_opts)) {
      std::fprintf(stderr, "WAL open failed\n");
      return 1;
    }
    Timer t;
    for (size_t i = 0; i < wal_records; ++i) {
      wal.Append(persist::kWalOpInsert, data[i % data.size()]);
    }
    wal.Sync();
    append_s = t.ElapsedSeconds();
  }
  double replay_s = 0.0;
  uint64_t replayed = 0;
  {
    Timer t;
    persist::WalReplayStats stats;
    if (!persist::WalReplay(
            dir, 0, [](const persist::WalRecord&) {}, &stats)) {
      std::fprintf(stderr, "WAL replay failed\n");
      return 1;
    }
    replay_s = t.ElapsedSeconds();
    replayed = stats.applied;
  }
  const double append_us = append_s * 1e6 / wal_records;

  Table table({"metric", "value"});
  table.AddRow({"cold build", FormatSeconds(cold_build_s)});
  table.AddRow({"snapshot save", FormatSeconds(save_s)});
  table.AddRow({"snapshot restore", FormatSeconds(restore_s)});
  table.AddRow({"restore speedup", FormatRatio(speedup) + "x"});
  table.AddRow({"snapshot bytes", std::to_string(snapshot_bytes)});
  table.AddRow({"WAL append avg", FormatMicros(append_us)});
  table.AddRow({"WAL replay (" + std::to_string(replayed) + " recs)",
                FormatSeconds(replay_s)});
  table.Print();

  const char* env_out = std::getenv("ELSI_BENCH_PERSIST_OUT");
  const std::string out =
      (env_out != nullptr && env_out[0] != '\0') ? env_out
                                                 : "BENCH_persist.json";
  std::FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"n\": %zu,\n"
               "  \"kind\": \"ZM\",\n"
               "  \"cold_build_ms\": %.3f,\n"
               "  \"snapshot_save_ms\": %.3f,\n"
               "  \"snapshot_restore_ms\": %.3f,\n"
               "  \"restore_speedup\": %.2f,\n"
               "  \"snapshot_bytes\": %llu,\n"
               "  \"wal_records\": %zu,\n"
               "  \"wal_append_us_avg\": %.3f,\n"
               "  \"wal_replay_ms\": %.3f\n"
               "}\n",
               n, cold_build_s * 1e3, save_s * 1e3, restore_s * 1e3, speedup,
               static_cast<unsigned long long>(snapshot_bytes), wal_records,
               append_us, replay_s * 1e3);
  std::fclose(f);
  std::printf("wrote %s\n", out.c_str());

  std::filesystem::remove_all(dir);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace elsi

int main(int argc, char** argv) { return elsi::bench::Run(argc, argv); }
