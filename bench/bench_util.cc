#include "bench_util.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "data/workload.h"
#include "obs/exporters.h"
#include "obs/metrics.h"
#include "persist/model_cache.h"
#include "prof/sampler.h"
#include "traditional/grid_index.h"
#include "traditional/hrr_tree.h"
#include "traditional/kdb_tree.h"
#include "traditional/rstar_tree.h"

namespace elsi {
namespace bench {
namespace {

size_t EnvSize(const char* name, size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  const long long parsed = std::atoll(value);
  return parsed > 0 ? static_cast<size_t>(parsed) : fallback;
}

}  // namespace

bool FullMode() {
  const char* value = std::getenv("ELSI_BENCH_FULL");
  return value != nullptr && value[0] == '1';
}

size_t BenchN() {
  return EnvSize("ELSI_BENCH_N", FullMode() ? 500000 : 50000);
}

uint64_t BenchSeed() { return EnvSize("ELSI_BENCH_SEED", 42); }

namespace {

size_t g_bench_batch = 0;
std::string g_metrics_out;
std::string g_trace_out;
std::string g_profile_out;

std::string EnvString(const char* name) {
  const char* value = std::getenv(name);
  return value == nullptr ? std::string() : std::string(value);
}

/// atexit hook: every figure bench can emit a metrics snapshot (and trace)
/// alongside its table by passing --metrics-out= / --trace-out= or setting
/// ELSI_BENCH_METRICS_OUT / ELSI_BENCH_TRACE_OUT. Guarded so a re-run of
/// InitBenchThreads (or atexit firing alongside an explicit call) exports
/// once; the writes themselves are tmp+rename, so a failed export never
/// leaves a truncated file behind.
void WriteBenchObsOutputs() {
  static bool exported = false;
  if (exported) return;
  exported = true;
  if (!g_metrics_out.empty()) obs::WriteMetricsJson(g_metrics_out);
  if (!g_trace_out.empty()) obs::WriteTraceJson(g_trace_out);
  if (!g_profile_out.empty()) {
    prof::CpuProfiler::Get().Stop();
    std::string error;
    if (!prof::WriteCollapsedProfile(g_profile_out, &error)) {
      std::fprintf(stderr, "bench: profile export failed: %s\n",
                   error.c_str());
    }
  }
}

}  // namespace

void InitBenchThreads(int argc, char** argv) {
  size_t threads = EnvSize("ELSI_BENCH_THREADS", 0);
  g_bench_batch = EnvSize("ELSI_BENCH_BATCH", 0);
  g_metrics_out = EnvString("ELSI_BENCH_METRICS_OUT");
  g_trace_out = EnvString("ELSI_BENCH_TRACE_OUT");
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads" && i + 1 < argc) {
      threads = static_cast<size_t>(std::atoll(argv[i + 1]));
    } else if (arg.rfind("--threads=", 0) == 0) {
      threads = static_cast<size_t>(std::atoll(arg.c_str() + 10));
    } else if (arg == "--batch" && i + 1 < argc) {
      g_bench_batch = static_cast<size_t>(std::atoll(argv[i + 1]));
    } else if (arg.rfind("--batch=", 0) == 0) {
      g_bench_batch = static_cast<size_t>(std::atoll(arg.c_str() + 8));
    } else if (arg == "--metrics-out" && i + 1 < argc) {
      g_metrics_out = argv[i + 1];
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      g_metrics_out = arg.substr(14);
    } else if (arg == "--trace-out" && i + 1 < argc) {
      g_trace_out = argv[i + 1];
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      g_trace_out = arg.substr(12);
    } else if (arg == "--profile-out" && i + 1 < argc) {
      g_profile_out = argv[i + 1];
    } else if (arg.rfind("--profile-out=", 0) == 0) {
      g_profile_out = arg.substr(14);
    }
  }
  if (g_profile_out.empty()) g_profile_out = EnvString("ELSI_BENCH_PROFILE_OUT");
  if (threads > 0) ThreadPool::SetGlobalThreads(threads);
  if (!g_profile_out.empty()) {
    std::string error;
    if (!prof::CpuProfiler::Get().Start(prof::ProfilerOptions{}, &error)) {
      std::fprintf(stderr, "bench: profiler not started: %s\n", error.c_str());
      g_profile_out.clear();
    }
  }
  if (!g_metrics_out.empty() || !g_trace_out.empty() || !g_profile_out.empty()) {
    static bool registered = false;
    if (!registered) {
      registered = true;
      std::atexit(&WriteBenchObsOutputs);
    }
  }
}

PhaseCounters::PhaseCounters()
    : group_(prof::CounterGroup::Open(
          prof::CounterGroup::Scope::kProcessTree)) {}

void PhaseCounters::Begin() {
  start_ = prof::CounterValues{};
  if (group_ != nullptr) group_->Read(&start_);
}

PhaseCounterRates PhaseCounters::End(uint64_t ops) {
  PhaseCounterRates rates;
  if (group_ == nullptr ||
      group_->mode() != prof::CounterMode::kHardware) {
    return rates;  // software tier has no IPC/LLC story; report zeros
  }
  prof::CounterValues now;
  if (!group_->Read(&now)) return rates;
  const prof::CounterValues d = now.DeltaSince(start_);
  rates.ipc = d.Ipc();
  rates.llc_miss_per_op = prof::PerOp(d.llc_misses, ops);
  rates.branch_miss_per_op = prof::PerOp(d.branch_misses, ops);
  rates.hardware = true;
  return rates;
}

size_t BenchBatch() { return g_bench_batch; }

RankModelConfig BenchModelConfig() {
  RankModelConfig cfg;
  cfg.hidden = {16};
  cfg.epochs = static_cast<int>(EnvSize("ELSI_BENCH_EPOCHS", 120));
  cfg.learning_rate = 0.01;
  cfg.seed = BenchSeed();
  return cfg;
}

BuildProcessorConfig BenchProcessorConfig(size_t n) {
  BuildProcessorConfig cfg;
  cfg.model = BenchModelConfig();
  cfg.seed = BenchSeed();
  // Paper defaults are tuned for n = 1e8 (rho 1e-4, beta 1e4, C = 100,
  // eta = 8, eps = 0.5); rho and beta are rescaled so |Ds| stays a small
  // but trainable fraction of the bench cardinality.
  cfg.sp.rho = 0.005;
  cfg.rsp.rho = 0.005;
  cfg.cl.clusters = 100;
  cfg.rs.beta = std::max<size_t>(64, n / 100);
  cfg.rl.eta = 8;
  cfg.rl.max_steps = 300;
  cfg.mr.epsilon = 0.5;
  cfg.mr.synthetic_size = 1024;
  return cfg;
}

BaseIndexScale BenchScale(size_t n) {
  BaseIndexScale scale;
  scale.leaf_target = std::max<size_t>(5000, n / 8);
  return scale;
}

LearnedIndexBundle MakeLearnedIndex(const LearnedVariant& variant, size_t n,
                                    double lambda,
                                    std::shared_ptr<MethodSelector> selector) {
  LearnedIndexBundle bundle;
  if (!variant.with_elsi) {
    bundle.index =
        MakeBaseIndex(variant.kind,
                      std::make_shared<DirectTrainer>(BenchModelConfig()),
                      BenchScale(n));
    return bundle;
  }
  if (selector == nullptr) {
    selector = std::make_shared<ScorerSelector>(GetBenchScorer(), lambda, 1.0);
  }
  bundle.processor = MakeElsiProcessor(variant.kind, BenchProcessorConfig(n),
                                       std::move(selector));
  bundle.index = MakeBaseIndex(variant.kind, bundle.processor, BenchScale(n));
  return bundle;
}

std::unique_ptr<SpatialIndex> MakeTraditionalIndex(const std::string& name) {
  if (name == "Grid") return std::make_unique<GridIndex>();
  if (name == "KDB") return std::make_unique<KdbTree>();
  if (name == "HRR") return std::make_unique<HrrTree>();
  if (name == "RR*") return std::make_unique<RStarTree>();
  ELSI_CHECK(false) << "unknown traditional index " << name;
  return nullptr;
}

namespace {

/// The groups are a pure regrouping of the flat sample list, so the cache
/// only stores samples and this rebuilds the per-data-set cost maps.
void RegroupScorerSamples(ScorerTrainingData* data) {
  std::map<std::pair<double, double>, ScorerDatasetGroup> groups;
  for (const ScorerSample& s : data->samples) {
    auto& group = groups[{s.log10_n, s.dissimilarity}];
    group.log10_n = s.log10_n;
    group.dissimilarity = s.dissimilarity;
    group.costs[s.method] = {s.build_cost, s.query_cost};
  }
  data->groups.clear();
  for (auto& [key, group] : groups) data->groups.push_back(group);
}

const ScorerTrainingData& BenchScorerDataImpl() {
  static ScorerTrainingData* data = [] {
    const std::string cache_dir = persist::CacheDir();
    auto* d = new ScorerTrainingData();
    if (persist::LoadScorerSamples(cache_dir, &d->samples)) {
      std::fprintf(stderr, "[bench] scorer ground truth loaded from %s\n",
                   persist::ScorerCachePath(cache_dir).c_str());
      RegroupScorerSamples(d);
      return d;
    }
    std::fprintf(stderr,
                 "[bench] measuring scorer ground truth (one-off, cached in "
                 "%s)...\n",
                 persist::ScorerCachePath(cache_dir).c_str());
    ScorerTrainerConfig cfg;
    cfg.log10_min = 3.0;
    cfg.log10_max = 4.4;
    cfg.cardinality_levels = 3;
    cfg.dissimilarities = {0.0, 0.15, 0.3, 0.45, 0.6, 0.75, 0.9};
    cfg.queries = 512;
    cfg.processor = BenchProcessorConfig(25000);
    cfg.seed = BenchSeed();
    *d = GenerateScorerTrainingData(cfg);
    persist::SaveScorerSamples(cache_dir, d->samples);
    return d;
  }();
  return *data;
}

}  // namespace

const ScorerTrainingData& GetBenchScorerData() { return BenchScorerDataImpl(); }

std::shared_ptr<const MethodScorer> GetBenchScorer() {
  static std::shared_ptr<const MethodScorer> scorer = [] {
    auto s = std::make_shared<MethodScorer>();
    s->Train(BenchScorerDataImpl().samples);
    return std::shared_ptr<const MethodScorer>(s);
  }();
  return scorer;
}

std::shared_ptr<const RebuildPredictor> GetBenchRebuildPredictor() {
  static std::shared_ptr<const RebuildPredictor> predictor = [] {
    const std::string cache_dir = persist::CacheDir();
    std::vector<RebuildSample> samples;
    if (!persist::LoadRebuildSamples(cache_dir, &samples)) {
      std::fprintf(stderr,
                   "[bench] simulating rebuild ground truth (one-off, cached "
                   "in %s)...\n",
                   persist::RebuildCachePath(cache_dir).c_str());
      RebuildTrainerConfig cfg;
      cfg.base_n = 10000;
      cfg.datasets = 4;
      cfg.checkpoints = 7;
      cfg.queries = 300;
      cfg.seed = BenchSeed();
      samples = GenerateRebuildTrainingData(cfg);
      persist::SaveRebuildSamples(cache_dir, samples);
    } else {
      std::fprintf(stderr, "[bench] rebuild ground truth loaded from %s\n",
                   persist::RebuildCachePath(cache_dir).c_str());
    }
    auto p = std::make_shared<RebuildPredictor>();
    p->Train(samples);
    return std::shared_ptr<const RebuildPredictor>(p);
  }();
  return predictor;
}

namespace {

/// Per-phase wall-clock histograms so every bench run leaves a footprint in
/// the --metrics-out snapshot without per-figure plumbing.
obs::Histogram& BenchBuildHistogram() {
  static obs::Histogram& hist =
      obs::GetHistogram("bench.build_us", obs::HistogramSpec::LatencyUs());
  return hist;
}

obs::Histogram& BenchQueryHistogram(const char* name) {
  // Per-query averages in microseconds, one series per query kind.
  static obs::Histogram& point = obs::GetHistogram(
      "bench.query_us{kind=point}", obs::HistogramSpec::LatencyUs());
  static obs::Histogram& window = obs::GetHistogram(
      "bench.query_us{kind=window}", obs::HistogramSpec::LatencyUs());
  static obs::Histogram& knn = obs::GetHistogram(
      "bench.query_us{kind=knn}", obs::HistogramSpec::LatencyUs());
  if (std::strcmp(name, "window") == 0) return window;
  if (std::strcmp(name, "knn") == 0) return knn;
  return point;
}

}  // namespace

double MeasureBuildSeconds(SpatialIndex* index, const Dataset& data) {
  double seconds = 0.0;
  {
    ScopedTimer timer(&BenchBuildHistogram(), &seconds);
    index->Build(data);
  }
  return seconds;
}

double MeasurePointQueryMicros(const SpatialIndex& index,
                               const std::vector<Point>& queries) {
  const size_t batch = BenchBatch();
  size_t found = 0;
  Timer timer;
  if (batch > 0) {
    BatchQueryOptions opts;
    opts.pool = &ThreadPool::Global();
    opts.chunk = batch;
    std::vector<uint8_t> hit(queries.size());
    std::vector<Point> out(queries.size());
    timer.Reset();
    index.PointQueryBatch(queries, hit, out, opts);
    for (const uint8_t h : hit) found += h;
  } else {
    timer.Reset();
    for (const Point& q : queries) {
      if (index.PointQuery(q)) ++found;
    }
  }
  const double micros = static_cast<double>(timer.ElapsedNanos()) * 1e-3 /
                        std::max<size_t>(1, queries.size());
  BenchQueryHistogram("point").Observe(micros);
  if (found < queries.size() * 95 / 100) {
    std::fprintf(stderr, "[bench] WARNING: %s found only %zu/%zu points\n",
                 index.Name().c_str(), found, queries.size());
  }
  return micros;
}

std::vector<std::vector<Point>> WindowTruths(const Dataset& data,
                                             const std::vector<Rect>& windows) {
  std::vector<std::vector<Point>> truths;
  truths.reserve(windows.size());
  for (const Rect& w : windows) truths.push_back(BruteForceWindow(data, w));
  return truths;
}

std::vector<std::vector<Point>> KnnTruths(const Dataset& data,
                                          const std::vector<Point>& queries,
                                          size_t k) {
  std::vector<std::vector<Point>> truths;
  truths.reserve(queries.size());
  for (const Point& q : queries) truths.push_back(BruteForceKnn(data, q, k));
  return truths;
}

std::pair<double, double> MeasureWindowQuery(
    const SpatialIndex& index, const std::vector<Rect>& windows,
    const std::vector<std::vector<Point>>& truths) {
  const size_t batch = BenchBatch();
  std::vector<std::vector<Point>> results(windows.size());
  Timer timer;
  if (batch > 0) {
    BatchQueryOptions opts;
    opts.pool = &ThreadPool::Global();
    opts.chunk = batch;
    index.WindowQueryBatch(windows, results, opts);
  } else {
    for (size_t i = 0; i < windows.size(); ++i) {
      results[i] = index.WindowQuery(windows[i]);
    }
  }
  const double micros = static_cast<double>(timer.ElapsedNanos()) * 1e-3 /
                        std::max<size_t>(1, windows.size());
  BenchQueryHistogram("window").Observe(micros);
  double recall_sum = 0.0;
  size_t counted = 0;
  for (size_t i = 0; i < windows.size(); ++i) {
    if (truths[i].empty()) continue;
    recall_sum += Recall(results[i], truths[i]);
    ++counted;
  }
  return {micros, counted > 0 ? recall_sum / counted : 1.0};
}

std::pair<double, double> MeasureKnnQuery(
    const SpatialIndex& index, const std::vector<Point>& queries, size_t k,
    const std::vector<std::vector<Point>>& truths) {
  const size_t batch = BenchBatch();
  std::vector<std::vector<Point>> results(queries.size());
  Timer timer;
  if (batch > 0) {
    BatchQueryOptions opts;
    opts.pool = &ThreadPool::Global();
    opts.chunk = batch;
    index.KnnQueryBatch(queries, k, results, opts);
  } else {
    for (size_t i = 0; i < queries.size(); ++i) {
      results[i] = index.KnnQuery(queries[i], k);
    }
  }
  const double micros = static_cast<double>(timer.ElapsedNanos()) * 1e-3 /
                        std::max<size_t>(1, queries.size());
  BenchQueryHistogram("knn").Observe(micros);
  double recall_sum = 0.0;
  for (size_t i = 0; i < queries.size(); ++i) {
    recall_sum += Recall(results[i], truths[i]);
  }
  return {micros, queries.empty() ? 1.0 : recall_sum / queries.size()};
}

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {}

void Table::AddRow(const std::vector<std::string>& cells) {
  ELSI_CHECK_EQ(cells.size(), columns_.size());
  rows_.push_back(cells);
}

void Table::Print() const {
  std::vector<size_t> widths(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    std::printf("|");
    for (size_t c = 0; c < cells.size(); ++c) {
      std::printf(" %-*s |", static_cast<int>(widths[c]), cells[c].c_str());
    }
    std::printf("\n");
  };
  print_row(columns_);
  std::printf("|");
  for (size_t c = 0; c < columns_.size(); ++c) {
    std::printf("%s|", std::string(widths[c] + 2, '-').c_str());
  }
  std::printf("\n");
  for (const auto& row : rows_) print_row(row);
}

std::string FormatSeconds(double seconds) {
  char buf[32];
  if (seconds < 0.001) {
    std::snprintf(buf, sizeof(buf), "%.0f us", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.1f ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f s", seconds);
  }
  return buf;
}

std::string FormatMicros(double micros) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f us", micros);
  return buf;
}

std::string FormatRatio(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", value);
  return buf;
}

void PrintBanner(const std::string& name, const std::string& paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s — reproduces %s\n", name.c_str(), paper_ref.c_str());
  std::printf(
      "n = %zu, seed = %llu, threads = %zu%s (ELSI_BENCH_N / "
      "ELSI_BENCH_FULL=1 / --threads to scale)\n",
      BenchN(), static_cast<unsigned long long>(BenchSeed()),
      ThreadPool::Global().thread_count(), FullMode() ? ", FULL mode" : "");
  std::printf("==============================================================\n");
}

}  // namespace bench
}  // namespace elsi
