// Measures what the elsi::obs telemetry layer costs on the hot paths and
// writes BENCH_obs_overhead.json. The obs layer is a compile-time option, so
// a single binary can only report its own mode: CI configures the tree twice
// (-DELSI_OBS=ON / -DELSI_OBS=OFF), runs this bench from each build, and
// asserts that the instrumented numbers stay within a few percent of the
// stripped ones (see .github/workflows/ci.yml, "obs overhead" step).
//
// Medians of repeated runs are reported to damp scheduler noise; override
// the output path with --out=FILE or ELSI_BENCH_OBS_OUT.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "data/workload.h"
#include "obs/metrics.h"
#include "obs/slow_query.h"
#include "obs/trace.h"

namespace elsi {
namespace bench {
namespace {

double Median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

void Run(const std::string& out_path) {
  PrintBanner("bench_obs_overhead",
              "telemetry overhead on the point-query hot path");
  const size_t n = BenchN();
  const size_t query_count = std::min<size_t>(n, 20000);
  constexpr int kRepetitions = 7;

  const Dataset data = GenerateDataset(DatasetKind::kOsm1, n, BenchSeed());
  const auto queries = SamplePointQueries(data, query_count, BenchSeed() + 7);

  // OG ZM (direct-trained SegmentedLearnedArray): the densest predict-and-
  // scan loop we have, and the one carrying the scan-length histogram.
  auto bundle = MakeLearnedIndex({BaseIndexKind::kZM, false}, n, 0.8);
  const double build_s = MeasureBuildSeconds(bundle.index.get(), data);

  std::vector<double> serial_us;
  std::vector<double> batch_us;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    {
      Timer timer;
      size_t found = 0;
      for (const Point& q : queries) {
        if (bundle.index->PointQuery(q)) ++found;
      }
      serial_us.push_back(static_cast<double>(timer.ElapsedNanos()) * 1e-3 /
                          std::max<size_t>(1, queries.size()));
      if (found == 0) std::fprintf(stderr, "[bench] WARNING: 0 hits\n");
    }
    {
      BatchQueryOptions opts;
      opts.pool = &ThreadPool::Global();
      opts.chunk = 256;
      std::vector<uint8_t> hit(queries.size());
      std::vector<Point> out(queries.size());
      Timer timer;
      bundle.index->PointQueryBatch(queries, hit, out, opts);
      batch_us.push_back(static_cast<double>(timer.ElapsedNanos()) * 1e-3 /
                         std::max<size_t>(1, queries.size()));
    }
  }

  const double serial_median = Median(serial_us);
  const double batch_median = Median(batch_us);
  std::printf("obs_enabled      : %d\n", ELSI_OBS_ENABLED);
  std::printf("build            : %s\n", FormatSeconds(build_s).c_str());
  std::printf("point query      : %s (median of %d)\n",
              FormatMicros(serial_median).c_str(), kRepetitions);
  std::printf("point query batch: %s (median of %d)\n",
              FormatMicros(batch_median).c_str(), kRepetitions);

  // Observability side data: recorded span totals and slow-query captures.
  // bench_diff classifies trace.* / slow_queries.* as context-info — shown
  // in diffs, never gated (span counts scale with n and repetitions).
  uint64_t trace_spans = 0;
  for (const obs::ThreadTrace& t : obs::TraceRegistry::Get().Snapshot()) {
    trace_spans += t.events.size() + t.dropped;
  }
  const uint64_t slow_captured =
      obs::GetCounter("slow_queries.captured").Value();

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[bench] cannot write %s\n", out_path.c_str());
    std::exit(1);
  }
  std::fprintf(f,
               "{\n"
               "  \"obs_enabled\": %d,\n"
               "  \"n\": %zu,\n"
               "  \"queries\": %zu,\n"
               "  \"repetitions\": %d,\n"
               "  \"build_s\": %.6f,\n"
               "  \"point_query_us\": %.4f,\n"
               "  \"batch_query_us\": %.4f,\n"
               "  \"trace\": {\"spans_total\": %llu},\n"
               "  \"slow_queries\": {\"captured\": %llu}\n"
               "}\n",
               ELSI_OBS_ENABLED, n, queries.size(), kRepetitions, build_s,
               serial_median, batch_median,
               static_cast<unsigned long long>(trace_spans),
               static_cast<unsigned long long>(slow_captured));
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
}

}  // namespace
}  // namespace bench
}  // namespace elsi

int main(int argc, char** argv) {
  elsi::bench::InitBenchThreads(argc, argv);
  std::string out_path = "BENCH_obs_overhead.json";
  if (const char* env = std::getenv("ELSI_BENCH_OBS_OUT")) out_path = env;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
  }
  elsi::bench::Run(out_path);
  return 0;
}
