// Reproduces Fig. 8: index build time vs data distribution. Ten indices —
// four traditional (Grid, KDB, HRR, RR*), three learned without ELSI (ML,
// RSMI, LISA) and the same three with ELSI (ML-F, RSMI-F, LISA-F) — across
// the six data-set families.

#include <cstdio>
#include <memory>

#include "bench_util.h"

namespace elsi {
namespace bench {
namespace {

void Run() {
  PrintBanner("bench_fig08_build_time", "Fig. 8 — build time vs distribution");
  const size_t n = BenchN();
  const double lambda = 0.8;  // The paper's default.

  const std::vector<std::string> traditional = {"Grid", "KDB", "HRR", "RR*"};
  const std::vector<LearnedVariant> learned = {
      {BaseIndexKind::kML, false},  {BaseIndexKind::kML, true},
      {BaseIndexKind::kRSMI, false}, {BaseIndexKind::kRSMI, true},
      {BaseIndexKind::kLISA, false}, {BaseIndexKind::kLISA, true},
  };

  std::vector<std::string> header = {"dataset"};
  for (const auto& name : traditional) header.push_back(name);
  for (const auto& v : learned) header.push_back(v.Label());
  Table table(header);

  for (DatasetKind kind : kAllDatasetKinds) {
    const Dataset data = GenerateDataset(kind, n, BenchSeed());
    std::vector<std::string> row = {DatasetKindName(kind)};
    for (const auto& name : traditional) {
      auto index = MakeTraditionalIndex(name);
      row.push_back(FormatSeconds(MeasureBuildSeconds(index.get(), data)));
    }
    for (const auto& variant : learned) {
      auto bundle = MakeLearnedIndex(variant, n, lambda);
      row.push_back(
          FormatSeconds(MeasureBuildSeconds(bundle.index.get(), data)));
    }
    table.AddRow(row);
    std::fprintf(stderr, "[bench] %s done\n",
                 DatasetKindName(kind).c_str());
  }
  table.Print();
  std::printf(
      "\nExpected shape (paper Fig. 8): traditional indices build fastest;\n"
      "learned indices without ELSI are one to two orders slower; the -F\n"
      "variants recover to the traditional level (LISA-F can even win);\n"
      "Grid degrades on NYC (block splits under extreme skew).\n");
}

}  // namespace
}  // namespace bench
}  // namespace elsi

int main(int argc, char** argv) {
  elsi::bench::InitBenchThreads(argc, argv);
  elsi::bench::Run();
  return 0;
}
