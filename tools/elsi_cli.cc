// elsi_cli — command-line driver for the library.
//
// Subcommands:
//   generate  --kind <uniform|skewed|osm1|osm2|tpch|nyc> --n <count>
//             [--seed S] --out <file.csv|file.bin>
//   bench     --input <file.csv|file.bin> --index <zm|ml|rsmi|lisa|flood>
//             [--method <sp|cl|mr|rs|rl|og>] [--epochs E] [--seed S]
//             [--queries Q] [--window-frac F] [--knn K] [--threads T]
//             [--batch B] [--metrics-out F] [--trace-out F] [--prom-out F]
//   stats     [--kind K] [--n N] [--updates U] [--queries Q] [--seed S]
//             [--threads T] [--metrics-out F] [--trace-out F] [--prom-out F]
//   save      --input <file.csv|file.bin> --out <file.snap>
//             [--index <zm|ml|rsmi|lisa|grid|kdb|hrr|rstar>] [--seed S]
//   load      --snapshot <file.snap> [--queries Q] [--seed S]
//   recover   --dir <index-dir> [--index KIND] [--input <file>]
//             [--insert N] [--checkpoint 0|1] [--seed S]
//   serve     [--kind K] [--n N] [--seed S] [--port P] [--duration S]
//             [--threads T]
//   top       --port P [--host H] [--endpoint /varz|/healthz|...]
//   profile   [--kind K] [--n N] [--seed S] [--seconds S] [--hz HZ]
//             [--out <file.collapsed>]
//   shard build  --input <file.csv|file.bin> --out <file.sshard>
//                [--shards N] [--index <zm|ml|rsmi|lisa>] [--elsi 0|1]
//                [--mode <curve|grid>] [--curve <z|hilbert>] [--threads T]
//   shard query  --snapshot <file.sshard> [--queries Q] [--window-frac F]
//                [--knn K] [--seed S] [--threads T] [--batch B]
//   shard serve  [--kind K] [--n N] [--shards N] [--seed S] [--port P]
//                [--duration S] [--threads T]
//
// `bench` builds the chosen index (through ELSI's build processor unless
// --method og) and reports build time plus point/window/kNN query timings
// and recall against brute force on a sample.
//
// `save` builds an index over the input points and writes an atomic
// versioned snapshot; `load` restores it and spot-checks queries against
// the restored contents. `recover` opens (or creates) a durable index
// directory — newest valid snapshot + WAL replay — optionally bulk-loading
// `--input` on first open, appending `--insert N` random points through the
// WAL, and writing a checkpoint.
//
// `stats` runs a self-contained telemetry tour — build with a selector over
// the whole method pool, mixed query/update workload, rebuild-predictor
// checks — then prints the metric snapshot and optionally exports it
// (--metrics-out JSON, --prom-out Prometheus text, --trace-out Chrome
// trace JSON for chrome://tracing or https://ui.perfetto.dev).
//
// `serve` builds an index over synthetic data, starts the embedded HTTP
// exposition server (see src/obs/http_exporter.h), prints the bound port,
// and drives a continuous query/update workload so /metrics, /healthz,
// /varz, /debug/trace and /debug/queries show live data. --duration 0
// (default) serves until the process is killed. `top` fetches one endpoint
// from a running server and prints it (a curl-free liveness probe).
//
// `shard build` partitions the input along a space-filling curve and builds
// one index per shard (in parallel), writing a single sharded snapshot.
// `shard query` restores it and runs point/window/kNN plus the analytics
// operators through the scatter-gather planner, reporting how many shards
// each kNN actually visited. `shard serve` is `serve` with a ShardedIndex
// behind the HTTP exporter, so /healthz shows the per-shard population,
// skew ratio, and degraded-shard count (see DESIGN.md "Sharded
// scatter-gather").
//
// `profile` runs the elsi::prof stack over a self-contained query/update
// workload: per-span hardware-counter attribution (IPC, LLC misses per
// call) plus the sampling CPU profiler, whose collapsed stacks go to
// --out (flamegraph.pl / speedscope input). Degrades gracefully where
// perf_event_open is denied — span wall-clock attribution and the
// clock-only sampler still work, and the counter status line says why
// (see DESIGN.md "Profiling & hardware counters").
//
// Flags accept both "--flag value" and "--flag=value".

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/elsi.h"
#include "data/dataset.h"
#include "data/synthetic.h"
#include "data/workload.h"
#include "learned/flood_index.h"
#include "obs/exporters.h"
#include "obs/flight_recorder.h"
#include "obs/http_exporter.h"
#include "obs/metrics.h"
#include "obs/model_health.h"
#include "obs/trace.h"
#include "persist/elsi.h"
#include "persist/io.h"
#include "persist/snapshot.h"
#include "shard/operators.h"
#include "shard/sharded_index.h"
#include "prof/counters.h"
#include "prof/sampler.h"
#include "prof/span_costs.h"
#include "bench_diff_lib.h"

namespace elsi {
namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  elsi_cli generate --kind <uniform|skewed|osm1|osm2|tpch|nyc>\n"
      "                    --n <count> [--seed S] --out <file.csv|file.bin>\n"
      "  elsi_cli bench    --input <file.csv|file.bin>\n"
      "                    --index <zm|ml|rsmi|lisa|flood>\n"
      "                    [--method <sp|cl|mr|rs|rl|og>] [--epochs E]\n"
      "                    [--seed S] [--queries Q] [--window-frac F]\n"
      "                    [--knn K] [--threads T] [--batch B]\n"
      "                    [--metrics-out F] [--trace-out F] [--prom-out F]\n"
      "  elsi_cli stats    [--kind K] [--n N] [--updates U] [--queries Q]\n"
      "                    [--seed S] [--threads T]\n"
      "                    [--metrics-out F] [--trace-out F] [--prom-out F]\n"
      "  elsi_cli save     --input <file.csv|file.bin> --out <file.snap>\n"
      "                    [--index <zm|ml|rsmi|lisa|grid|kdb|hrr|rstar>]\n"
      "                    [--seed S]\n"
      "  elsi_cli load     --snapshot <file.snap> [--queries Q] [--seed S]\n"
      "  elsi_cli recover  --dir <index-dir> [--index KIND] [--input <file>]\n"
      "                    [--insert N] [--checkpoint 0|1] [--seed S]\n"
      "  elsi_cli serve    [--kind K] [--n N] [--seed S] [--port P]\n"
      "                    [--duration S] [--threads T]\n"
      "  elsi_cli top      --port P [--host H] [--endpoint /varz]\n"
      "  elsi_cli slow     --port P [--host H] [--raw 0|1]\n"
      "  elsi_cli profile  [--kind K] [--n N] [--seed S] [--seconds S]\n"
      "                    [--hz HZ] [--out <file.collapsed>]\n"
      "  elsi_cli shard build --input <file> --out <file.sshard>\n"
      "                    [--shards N] [--index <zm|ml|rsmi|lisa>]\n"
      "                    [--elsi 0|1] [--mode <curve|grid>]\n"
      "                    [--curve <z|hilbert>] [--threads T]\n"
      "  elsi_cli shard query --snapshot <file.sshard> [--queries Q]\n"
      "                    [--window-frac F] [--knn K] [--seed S]\n"
      "                    [--threads T] [--batch B]\n"
      "  elsi_cli shard serve [--kind K] [--n N] [--shards N] [--seed S]\n"
      "                    [--port P] [--duration S] [--threads T]\n");
  return 2;
}

/// CLI spelling -> SpatialIndex::Name() for the persist layer.
std::string PersistKindName(const std::string& cli_name) {
  const std::map<std::string, std::string> kinds = {
      {"zm", "ZM"},     {"ml", "ML"},   {"rsmi", "RSMI"}, {"lisa", "LISA"},
      {"grid", "Grid"}, {"kdb", "KDB"}, {"hrr", "HRR"},   {"rstar", "RR*"}};
  const auto it = kinds.find(cli_name);
  return it == kinds.end() ? std::string() : it->second;
}

std::map<std::string, std::string> ParseFlags(int argc, char** argv,
                                              int start) {
  std::map<std::string, std::string> flags;
  for (int i = start; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) != 0) return {};
    const char* body = argv[i] + 2;
    if (const char* eq = std::strchr(body, '=')) {
      flags[std::string(body, eq - body)] = eq + 1;
    } else {
      if (i + 1 >= argc) return {};
      flags[body] = argv[++i];
    }
  }
  return flags;
}

std::string FlagOr(const std::map<std::string, std::string>& flags,
                   const std::string& name, const std::string& fallback) {
  const auto it = flags.find(name);
  return it == flags.end() ? fallback : it->second;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Writes whichever of --metrics-out / --prom-out / --trace-out were given;
/// returns false if any write failed.
bool WriteObsOutputs(const std::map<std::string, std::string>& flags) {
  bool ok = true;
  const auto write = [&ok](const std::string& path,
                           bool (*writer)(const std::string&),
                           const char* what) {
    if (path.empty()) return;
    if (writer(path)) {
      std::printf("wrote %s to %s\n", what, path.c_str());
    } else {
      ok = false;
    }
  };
  write(FlagOr(flags, "metrics-out", ""), &obs::WriteMetricsJson,
        "metrics JSON");
  write(FlagOr(flags, "prom-out", ""), &obs::WriteMetricsPrometheus,
        "Prometheus metrics");
  write(FlagOr(flags, "trace-out", ""), &obs::WriteTraceJson,
        "Chrome trace (open in chrome://tracing or ui.perfetto.dev)");
  return ok;
}

int RunGenerate(const std::map<std::string, std::string>& flags) {
  const std::string kind_name = FlagOr(flags, "kind", "");
  const std::string out = FlagOr(flags, "out", "");
  const size_t n = std::strtoull(FlagOr(flags, "n", "0").c_str(), nullptr, 10);
  const uint64_t seed =
      std::strtoull(FlagOr(flags, "seed", "42").c_str(), nullptr, 10);
  if (kind_name.empty() || out.empty() || n == 0) return Usage();

  const std::map<std::string, DatasetKind> kinds = {
      {"uniform", DatasetKind::kUniform}, {"skewed", DatasetKind::kSkewed},
      {"osm1", DatasetKind::kOsm1},       {"osm2", DatasetKind::kOsm2},
      {"tpch", DatasetKind::kTpch},       {"nyc", DatasetKind::kNyc}};
  const auto it = kinds.find(kind_name);
  if (it == kinds.end()) {
    std::fprintf(stderr, "unknown kind '%s'\n", kind_name.c_str());
    return 2;
  }
  const Dataset data = GenerateDataset(it->second, n, seed);
  const bool ok = EndsWith(out, ".bin") ? SaveBinary(data, out)
                                        : SaveCsv(data, out);
  if (!ok) {
    std::fprintf(stderr, "failed to write %s\n", out.c_str());
    return 1;
  }
  std::printf("wrote %zu %s points to %s\n", data.size(), kind_name.c_str(),
              out.c_str());
  return 0;
}

int RunBench(const std::map<std::string, std::string>& flags) {
  const std::string input = FlagOr(flags, "input", "");
  const std::string index_name = FlagOr(flags, "index", "zm");
  const std::string method_name = FlagOr(flags, "method", "rs");
  if (input.empty()) return Usage();
  const uint64_t seed =
      std::strtoull(FlagOr(flags, "seed", "42").c_str(), nullptr, 10);
  const int epochs = std::atoi(FlagOr(flags, "epochs", "120").c_str());
  const size_t queries =
      std::strtoull(FlagOr(flags, "queries", "2000").c_str(), nullptr, 10);
  const double window_frac =
      std::atof(FlagOr(flags, "window-frac", "0.0001").c_str());
  const size_t k =
      std::strtoull(FlagOr(flags, "knn", "25").c_str(), nullptr, 10);
  const size_t threads =
      std::strtoull(FlagOr(flags, "threads", "0").c_str(), nullptr, 10);
  // Builds are bit-identical across thread counts (partition-derived model
  // seeds); the knob only changes wall-clock.
  if (threads > 0) ThreadPool::SetGlobalThreads(threads);
  // Query batch size: 0 (default) keeps the serial per-query loops; B > 0
  // routes the measurement loops through the batched predict-and-scan path
  // with chunks of B on the global pool. Answers are identical either way
  // (see DESIGN.md "Batched predict-and-scan").
  const size_t batch =
      std::strtoull(FlagOr(flags, "batch", "0").c_str(), nullptr, 10);
  std::printf("worker threads: %zu\n", ThreadPool::Global().thread_count());
  if (batch > 0) std::printf("query batch:    %zu\n", batch);

  Dataset data;
  const bool loaded = EndsWith(input, ".bin") ? LoadBinary(input, &data)
                                              : LoadCsv(input, &data);
  if (!loaded || data.empty()) {
    std::fprintf(stderr, "failed to load points from %s\n", input.c_str());
    return 1;
  }
  std::printf("loaded %zu points from %s\n", data.size(), input.c_str());

  // Assemble the trainer: OG (direct) or ELSI with a fixed method.
  BuildProcessorConfig cfg;
  cfg.model.epochs = epochs;
  cfg.model.seed = seed;
  cfg.seed = seed;
  cfg.rs.beta = std::max<size_t>(64, data.size() / 100);
  cfg.sp.rho = 0.005;
  const std::map<std::string, BuildMethodId> methods = {
      {"sp", BuildMethodId::kSP}, {"cl", BuildMethodId::kCL},
      {"mr", BuildMethodId::kMR}, {"rs", BuildMethodId::kRS},
      {"rl", BuildMethodId::kRL}, {"og", BuildMethodId::kOG}};
  const auto mit = methods.find(method_name);
  if (mit == methods.end()) {
    std::fprintf(stderr, "unknown method '%s'\n", method_name.c_str());
    return 2;
  }
  std::shared_ptr<ModelTrainer> trainer;
  std::shared_ptr<BuildProcessor> processor;
  if (mit->second == BuildMethodId::kOG) {
    trainer = std::make_shared<DirectTrainer>(cfg.model);
  } else {
    cfg.enabled = {mit->second};
    processor = std::make_shared<BuildProcessor>(
        cfg, std::make_shared<FixedSelector>(mit->second));
    trainer = processor;
  }

  // Assemble the index.
  std::unique_ptr<SpatialIndex> index;
  BaseIndexScale scale;
  scale.leaf_target = std::max<size_t>(5000, data.size() / 8);
  if (index_name == "flood") {
    index = std::make_unique<FloodIndex>(trainer);
  } else {
    const std::map<std::string, BaseIndexKind> kinds = {
        {"zm", BaseIndexKind::kZM},
        {"ml", BaseIndexKind::kML},
        {"rsmi", BaseIndexKind::kRSMI},
        {"lisa", BaseIndexKind::kLISA}};
    const auto iit = kinds.find(index_name);
    if (iit == kinds.end()) {
      std::fprintf(stderr, "unknown index '%s'\n", index_name.c_str());
      return 2;
    }
    if (iit->second == BaseIndexKind::kLISA &&
        (mit->second == BuildMethodId::kCL ||
         mit->second == BuildMethodId::kRL)) {
      std::fprintf(stderr, "CL/RL do not apply to LISA (see DESIGN.md)\n");
      return 2;
    }
    index = MakeBaseIndex(iit->second, trainer, scale);
  }

  Timer build_timer;
  index->Build(data);
  std::printf("built %s via %s in %.3f s",
              index->Name().c_str(),
              mit->second == BuildMethodId::kOG
                  ? "OG (direct training)"
                  : ("ELSI/" + method_name).c_str(),
              build_timer.ElapsedSeconds());
  if (processor != nullptr) {
    size_t models = processor->records().size();
    size_t ds = 0;
    for (const auto& r : processor->records()) ds += r.training_size;
    std::printf(" (%zu models, total |Ds| = %zu)", models, ds);
  }
  std::printf("\n");

  // Queries.
  BatchQueryOptions batch_opts;
  batch_opts.pool = &ThreadPool::Global();
  batch_opts.chunk = batch;

  const auto point_probes = SamplePointQueries(data, queries, seed + 1);
  Timer point_timer;
  size_t found = 0;
  if (batch > 0) {
    std::vector<uint8_t> hit(point_probes.size(), 0);
    std::vector<Point> payload(point_probes.size());
    index->PointQueryBatch(point_probes, hit, payload, batch_opts);
    for (const uint8_t h : hit) found += h;
  } else {
    for (const Point& q : point_probes) {
      if (index->PointQuery(q)) ++found;
    }
  }
  std::printf("point queries:  %.2f us avg (%zu/%zu found)\n",
              point_timer.ElapsedMicros() / point_probes.size(), found,
              point_probes.size());

  const size_t window_count = std::min<size_t>(queries, 300);
  const auto windows =
      SampleWindowQueries(data, window_count, window_frac, seed + 2);
  Timer window_timer;
  size_t window_hits = 0;
  std::vector<std::vector<Point>> window_results(windows.size());
  if (batch > 0) {
    index->WindowQueryBatch(windows, window_results, batch_opts);
  } else {
    for (size_t i = 0; i < windows.size(); ++i) {
      window_results[i] = index->WindowQuery(windows[i]);
    }
  }
  for (const auto& r : window_results) window_hits += r.size();
  const double window_micros = window_timer.ElapsedMicros() / windows.size();
  double recall_sum = 0.0;
  size_t counted = 0;
  for (size_t i = 0; i < windows.size(); ++i) {
    const auto truth = BruteForceWindow(data, windows[i]);
    if (truth.empty()) continue;
    recall_sum += Recall(window_results[i], truth);
    ++counted;
  }
  std::printf("window queries: %.2f us avg, %.1f results avg, recall %.3f\n",
              window_micros,
              static_cast<double>(window_hits) / windows.size(),
              counted > 0 ? recall_sum / counted : 1.0);

  const size_t knn_count = std::min<size_t>(queries, 200);
  const auto knn_probes = SampleKnnQueries(data, knn_count, seed + 3);
  Timer knn_timer;
  std::vector<std::vector<Point>> knn_results(knn_probes.size());
  if (batch > 0) {
    index->KnnQueryBatch(knn_probes, k, knn_results, batch_opts);
  } else {
    for (size_t i = 0; i < knn_probes.size(); ++i) {
      knn_results[i] = index->KnnQuery(knn_probes[i], k);
    }
  }
  double knn_recall = 0.0;
  for (size_t i = 0; i < knn_probes.size(); ++i) {
    knn_recall +=
        Recall(knn_results[i], BruteForceKnn(data, knn_probes[i], k));
  }
  std::printf("kNN queries:    %.2f us avg (k = %zu), recall %.3f\n",
              knn_timer.ElapsedMicros() / knn_probes.size(), k,
              knn_recall / knn_probes.size());
  return WriteObsOutputs(flags) ? 0 : 1;
}

/// A rebuild predictor trained on a small hand-crafted feature grid (label
/// 1 when the update ratio is high and the CDF similarity low) — enough to
/// exercise the decision path in milliseconds, unlike the full simulation
/// of GenerateRebuildTrainingData.
RebuildPredictor MakeStatsPredictor(uint64_t seed) {
  std::vector<RebuildSample> samples;
  for (double ratio = 0.0; ratio <= 1.0; ratio += 0.125) {
    for (double sim = 0.5; sim <= 1.0; sim += 0.0625) {
      RebuildSample s;
      s.features.log10_n = 4.5;
      s.features.dissimilarity = 1.0 - sim;
      s.features.depth = 2.0;
      s.features.update_ratio = ratio;
      s.features.cdf_similarity = sim;
      s.label = (ratio > 0.3 && sim < 0.9) ? 1.0 : 0.0;
      samples.push_back(s);
    }
  }
  RebuildPredictor predictor;
  RebuildPredictorTrainOptions options;
  options.seed = seed;
  predictor.Train(samples, options);
  return predictor;
}

int RunStats(const std::map<std::string, std::string>& flags) {
  const std::string kind_name = FlagOr(flags, "kind", "osm1");
  const size_t n =
      std::strtoull(FlagOr(flags, "n", "20000").c_str(), nullptr, 10);
  const uint64_t seed =
      std::strtoull(FlagOr(flags, "seed", "42").c_str(), nullptr, 10);
  const size_t queries =
      std::strtoull(FlagOr(flags, "queries", "2000").c_str(), nullptr, 10);
  const size_t updates = std::strtoull(
      FlagOr(flags, "updates", std::to_string(n / 2)).c_str(), nullptr, 10);
  const size_t threads =
      std::strtoull(FlagOr(flags, "threads", "0").c_str(), nullptr, 10);
  if (threads > 0) ThreadPool::SetGlobalThreads(threads);

  const std::map<std::string, DatasetKind> kinds = {
      {"uniform", DatasetKind::kUniform}, {"skewed", DatasetKind::kSkewed},
      {"osm1", DatasetKind::kOsm1},       {"osm2", DatasetKind::kOsm2},
      {"tpch", DatasetKind::kTpch},       {"nyc", DatasetKind::kNyc}};
  const auto kit = kinds.find(kind_name);
  if (kit == kinds.end() || n == 0) return Usage();

  // Build a ZM index through the full ELSI pipeline: a selector over the
  // whole method pool (Rand keeps it dependency-free) feeding the build
  // processor, wrapped in an update processor with a live rebuild
  // predictor.
  std::printf("== telemetry tour: ZM on %s, n=%zu, %zu updates ==\n",
              kind_name.c_str(), n, updates);
  const Dataset all = GenerateDataset(kit->second, n + updates, seed);
  const Dataset base(all.begin(), all.begin() + n);

  BuildProcessorConfig cfg;
  cfg.model.epochs = 60;
  cfg.model.seed = seed;
  cfg.seed = seed;
  cfg.sp.rho = 0.01;
  cfg.rs.beta = std::max<size_t>(64, n / 100);
  auto processor = MakeElsiProcessor(BaseIndexKind::kZM, cfg,
                                     std::make_shared<RandomSelector>(seed));
  BaseIndexScale scale;
  scale.leaf_target = std::max<size_t>(2000, n / 16);
  std::unique_ptr<SpatialIndex> index =
      MakeBaseIndex(BaseIndexKind::kZM, processor, scale);

  const RebuildPredictor predictor = MakeStatsPredictor(seed);
  UpdateProcessorConfig up_cfg;
  up_cfg.f_u = 256;
  up_cfg.seed = seed;
  UpdateProcessor updater(index.get(), &predictor, up_cfg);

  Timer build_timer;
  updater.Build(base);
  std::printf("build: %.3f s (%zu models)\n", build_timer.ElapsedSeconds(),
              processor->records().size());

  // Mixed workload: serial point queries (sampled inference timing +
  // scan-length histogram), one batched pass (GEMM timing), interleaved
  // inserts/removes driving the delta buffer and the rebuild predictor.
  const auto probes = SamplePointQueries(base, queries, seed + 1);
  size_t found = 0;
  for (const Point& q : probes) {
    if (index->PointQuery(q)) ++found;
  }
  BatchQueryOptions batch_opts;
  batch_opts.pool = &ThreadPool::Global();
  batch_opts.chunk = 256;
  std::vector<uint8_t> hit(probes.size(), 0);
  std::vector<Point> payload(probes.size());
  index->PointQueryBatch(probes, hit, payload, batch_opts);
  std::printf("queries: %zu serial + %zu batched (%zu found)\n",
              probes.size(), probes.size(), found);

  for (size_t i = 0; i < updates; ++i) {
    updater.Insert(all[n + i]);
    if (i % 4 == 3) updater.Remove(base[(i * 7919) % n]);
  }
  std::printf("updates: %zu applied, %zu rebuilds\n", updater.update_count(),
              updater.rebuild_count());

  // Human-readable snapshot of the headline metrics.
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::Get().Snapshot();
  std::printf("\n%-34s %12s\n", "counter/gauge", "value");
  for (const auto& [name, value] : snap.counters) {
    std::printf("%-34s %12llu\n", name.c_str(),
                static_cast<unsigned long long>(value));
  }
  for (const auto& [name, value] : snap.gauges) {
    std::printf("%-34s %12lld\n", name.c_str(),
                static_cast<long long>(value));
  }
  std::printf("\n%-34s %10s %12s %12s\n", "histogram", "count", "p50",
              "p99");
  for (const auto& h : snap.histograms) {
    std::printf("%-34s %10llu %12.2f %12.2f\n", h.name.c_str(),
                static_cast<unsigned long long>(h.total),
                h.ApproxQuantile(0.5), h.ApproxQuantile(0.99));
  }

  // Live-introspection summary: flight recorder, trace ring drops, and
  // per-index model health (the same data /healthz serves).
  const obs::FlightSnapshot flight = obs::FlightRecorder::Get().Snapshot();
  uint64_t trace_dropped = 0;
  for (const auto& [name, value] : snap.counters) {
    if (name == "trace.dropped_total") trace_dropped = value;
  }
  std::printf("\nflight recorder: %zu records (1/%llu sampled, %llu ring "
              "overwrites)\ntrace events dropped: %llu\n",
              flight.records.size(),
              static_cast<unsigned long long>(flight.sample_every),
              static_cast<unsigned long long>(flight.dropped),
              static_cast<unsigned long long>(trace_dropped));
  const auto health = obs::ModelHealthMonitor::Get().Snapshot();
  if (!health.empty()) {
    std::printf("\n%-8s %8s %10s %11s %11s %9s\n", "index", "samples",
                "scan-ewma", "scan-drift", "err-drift", "degraded");
    for (const auto& h : health) {
      std::printf("%-8s %8llu %10.1f %11.3f %11.3f %9s\n", h.index.c_str(),
                  static_cast<unsigned long long>(h.samples), h.current_scan,
                  h.scan_drift, h.error_drift, h.degraded ? "YES" : "no");
    }
  }
  return WriteObsOutputs(flags) ? 0 : 1;
}

bool LoadPointsFile(const std::string& input, Dataset* data) {
  const bool loaded = EndsWith(input, ".bin") ? LoadBinary(input, data)
                                              : LoadCsv(input, data);
  return loaded && !data->empty();
}

int RunSave(const std::map<std::string, std::string>& flags) {
  const std::string input = FlagOr(flags, "input", "");
  const std::string out = FlagOr(flags, "out", "");
  const std::string kind = PersistKindName(FlagOr(flags, "index", "zm"));
  if (input.empty() || out.empty()) return Usage();
  if (kind.empty()) {
    std::fprintf(stderr, "unknown index '%s'\n",
                 FlagOr(flags, "index", "zm").c_str());
    return 2;
  }
  Dataset data;
  if (!LoadPointsFile(input, &data)) {
    std::fprintf(stderr, "failed to load points from %s\n", input.c_str());
    return 1;
  }
  std::unique_ptr<SpatialIndex> index = persist::MakeIndexByName(kind, {});
  Timer build_timer;
  index->Build(data);
  const double build_s = build_timer.ElapsedSeconds();
  Timer save_timer;
  if (!persist::Snapshot::Save(*index, out)) {
    std::fprintf(stderr, "snapshot save failed for %s\n", out.c_str());
    return 1;
  }
  std::printf("built %s on %zu points in %.3f s\n", index->Name().c_str(),
              data.size(), build_s);
  std::printf("snapshot: %s written in %.3f s\n", out.c_str(),
              save_timer.ElapsedSeconds());
  return 0;
}

int RunLoad(const std::map<std::string, std::string>& flags) {
  const std::string path = FlagOr(flags, "snapshot", "");
  const size_t queries =
      std::strtoull(FlagOr(flags, "queries", "1000").c_str(), nullptr, 10);
  const uint64_t seed =
      std::strtoull(FlagOr(flags, "seed", "42").c_str(), nullptr, 10);
  if (path.empty()) return Usage();
  persist::SnapshotMeta meta;
  Timer load_timer;
  std::unique_ptr<SpatialIndex> index =
      persist::Snapshot::Load(path, {}, &meta);
  if (index == nullptr) {
    std::fprintf(stderr, "snapshot load failed (corrupt or unknown): %s\n",
                 path.c_str());
    return 1;
  }
  std::printf("loaded %s: kind=%s count=%zu last_lsn=%llu in %.3f s\n",
              path.c_str(), meta.kind.c_str(), index->size(),
              static_cast<unsigned long long>(meta.last_lsn),
              load_timer.ElapsedSeconds());
  if (queries > 0 && index->size() > 0) {
    const Dataset contents = index->CollectAll();
    const auto probes = SamplePointQueries(contents, queries, seed + 1);
    Timer point_timer;
    size_t found = 0;
    for (const Point& q : probes) {
      if (index->PointQuery(q)) ++found;
    }
    std::printf("point queries:  %.2f us avg (%zu/%zu found)\n",
                point_timer.ElapsedMicros() / probes.size(), found,
                probes.size());
    if (found != probes.size()) {
      std::fprintf(stderr, "restored index lost points\n");
      return 1;
    }
  }
  return 0;
}

int RunRecover(const std::map<std::string, std::string>& flags) {
  const std::string dir = FlagOr(flags, "dir", "");
  const std::string kind = PersistKindName(FlagOr(flags, "index", "zm"));
  const std::string input = FlagOr(flags, "input", "");
  const size_t inserts =
      std::strtoull(FlagOr(flags, "insert", "0").c_str(), nullptr, 10);
  const bool checkpoint = FlagOr(flags, "checkpoint", "0") == "1";
  const uint64_t seed =
      std::strtoull(FlagOr(flags, "seed", "42").c_str(), nullptr, 10);
  if (dir.empty()) return Usage();
  if (kind.empty()) {
    std::fprintf(stderr, "unknown index '%s'\n",
                 FlagOr(flags, "index", "zm").c_str());
    return 2;
  }

  persist::DurableElsiOptions opts;
  opts.kind = kind;
  persist::RecoveryStats stats;
  Timer open_timer;
  auto durable = persist::DurableElsi::OpenOrRecover(dir, opts, &stats);
  if (durable == nullptr) {
    std::fprintf(stderr, "recovery failed for %s\n", dir.c_str());
    return 1;
  }
  std::printf(
      "recovered: snapshot_loaded=%d seq=%llu discarded=%llu "
      "wal_applied=%llu wal_skipped=%llu torn_tail=%d in %.3f s\n",
      stats.snapshot_loaded ? 1 : 0,
      static_cast<unsigned long long>(stats.snapshot_seq),
      static_cast<unsigned long long>(stats.snapshots_discarded),
      static_cast<unsigned long long>(stats.wal.applied),
      static_cast<unsigned long long>(stats.wal.skipped),
      stats.wal.torn_tail ? 1 : 0, open_timer.ElapsedSeconds());

  if (!input.empty() && durable->size() == 0) {
    Dataset data;
    if (!LoadPointsFile(input, &data)) {
      std::fprintf(stderr, "failed to load points from %s\n", input.c_str());
      return 1;
    }
    Timer build_timer;
    durable->Build(data);
    std::printf("bulk-loaded %zu points in %.3f s (checkpointed)\n",
                data.size(), build_timer.ElapsedSeconds());
  }
  if (inserts > 0) {
    const Dataset extra =
        GenerateDataset(DatasetKind::kUniform, inserts, seed + 99);
    Timer insert_timer;
    for (const Point& p : extra) durable->Insert(p);
    std::printf("inserted %zu points through the WAL in %.3f s\n", inserts,
                insert_timer.ElapsedSeconds());
  }
  if (checkpoint) {
    if (!durable->Checkpoint()) {
      std::fprintf(stderr, "checkpoint failed\n");
      return 1;
    }
    std::printf("checkpoint: seq=%llu\n",
                static_cast<unsigned long long>(durable->last_snapshot_seq()));
  }
  std::printf("kind=%s size=%zu\n", durable->kind().c_str(), durable->size());
  return 0;
}

int RunServe(const std::map<std::string, std::string>& flags) {
  const std::string kind_name = FlagOr(flags, "kind", "osm1");
  const size_t n =
      std::strtoull(FlagOr(flags, "n", "20000").c_str(), nullptr, 10);
  const uint64_t seed =
      std::strtoull(FlagOr(flags, "seed", "42").c_str(), nullptr, 10);
  const double duration =
      std::atof(FlagOr(flags, "duration", "0").c_str());
  const size_t threads =
      std::strtoull(FlagOr(flags, "threads", "0").c_str(), nullptr, 10);
  if (threads > 0) ThreadPool::SetGlobalThreads(threads);

  const std::map<std::string, DatasetKind> kinds = {
      {"uniform", DatasetKind::kUniform}, {"skewed", DatasetKind::kSkewed},
      {"osm1", DatasetKind::kOsm1},       {"osm2", DatasetKind::kOsm2},
      {"tpch", DatasetKind::kTpch},       {"nyc", DatasetKind::kNyc}};
  const auto kit = kinds.find(kind_name);
  if (kit == kinds.end() || n == 0) return Usage();

  // Build a live, updatable index so every telemetry surface has data:
  // queries feed the flight recorder and drift monitor, inserts feed the
  // rebuild predictor.
  const Dataset all = GenerateDataset(kit->second, n * 2, seed);
  const Dataset base(all.begin(), all.begin() + n);
  auto trainer = std::make_shared<DirectTrainer>();
  BaseIndexScale scale;
  scale.leaf_target = std::max<size_t>(2000, n / 16);
  std::unique_ptr<SpatialIndex> index =
      MakeBaseIndex(BaseIndexKind::kZM, trainer, scale);
  const RebuildPredictor predictor = MakeStatsPredictor(seed);
  UpdateProcessorConfig up_cfg;
  up_cfg.f_u = 256;
  up_cfg.seed = seed;
  UpdateProcessor updater(index.get(), &predictor, up_cfg);
  updater.Build(base);

  obs::HttpExporter exporter;
  obs::HttpExporter::Options options;
  options.port = static_cast<uint16_t>(
      std::strtoul(FlagOr(flags, "port", "0").c_str(), nullptr, 10));
  if (!exporter.Start(options)) {
    std::fprintf(stderr,
                 "serve: cannot start the HTTP exporter (built with "
                 "-DELSI_OBS=OFF, or the port is taken)\n");
    return 1;
  }
  std::printf("serving on http://%s:%u\n", options.bind_address.c_str(),
              exporter.port());
  std::printf(
      "  /metrics /varz /healthz /debug/trace /debug/slow /debug/queries"
      " /debug/profile\n");
  std::printf("built ZM on %s, n=%zu; workload running%s\n",
              kind_name.c_str(), n,
              duration > 0 ? "" : " (Ctrl-C to stop)");
  std::fflush(stdout);

  // Steady background workload: a query mix plus a trickle of updates,
  // throttled so an idle `serve` stays cheap.
  const auto probes = SamplePointQueries(base, 512, seed + 1);
  const auto windows = SampleWindowQueries(base, 64, 0.0001, seed + 2);
  const auto knn_probes = SampleKnnQueries(base, 64, seed + 3);
  Timer uptime;
  size_t insert_pos = n;
  uint64_t round = 0;
  while (duration <= 0 || uptime.ElapsedSeconds() < duration) {
    for (const Point& q : probes) index->PointQuery(q);
    for (const Rect& w : windows) index->WindowQuery(w);
    for (const Point& q : knn_probes) index->KnnQuery(q, 10);
    for (int i = 0; i < 32 && insert_pos < all.size(); ++i) {
      updater.Insert(all[insert_pos++]);
    }
    if (insert_pos >= all.size()) insert_pos = n;  // recycle the tail
    ++round;
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
  exporter.Stop();
  std::printf("served %.1f s, %llu workload rounds\n",
              uptime.ElapsedSeconds(),
              static_cast<unsigned long long>(round));
  return 0;
}

int RunProfile(const std::map<std::string, std::string>& flags) {
  const std::string kind_name = FlagOr(flags, "kind", "osm1");
  const size_t n =
      std::strtoull(FlagOr(flags, "n", "20000").c_str(), nullptr, 10);
  const uint64_t seed =
      std::strtoull(FlagOr(flags, "seed", "42").c_str(), nullptr, 10);
  const double seconds = std::atof(FlagOr(flags, "seconds", "2").c_str());
  const int hz = std::atoi(FlagOr(flags, "hz", "99").c_str());
  const std::string out = FlagOr(flags, "out", "profile.collapsed");

  const std::map<std::string, DatasetKind> kinds = {
      {"uniform", DatasetKind::kUniform}, {"skewed", DatasetKind::kSkewed},
      {"osm1", DatasetKind::kOsm1},       {"osm2", DatasetKind::kOsm2},
      {"tpch", DatasetKind::kTpch},       {"nyc", DatasetKind::kNyc}};
  const auto kit = kinds.find(kind_name);
  if (kit == kinds.end() || n == 0 || seconds <= 0) return Usage();

  // Counter availability up front: "hardware", "software (no PMU: ...)" or
  // "unavailable (...)" — the rest of the run adapts, never fails.
  std::printf("counters: %s\n", prof::CounterStatus().c_str());

  // Span attribution on before any spans run, so build + queries + updates
  // all land in the table.
  prof::SpanCostRegistry::Get().Enable();

  const Dataset all = GenerateDataset(kit->second, n * 2, seed);
  const Dataset base(all.begin(), all.begin() + n);
  auto trainer = std::make_shared<DirectTrainer>();
  BaseIndexScale scale;
  scale.leaf_target = std::max<size_t>(2000, n / 16);
  std::unique_ptr<SpatialIndex> index =
      MakeBaseIndex(BaseIndexKind::kZM, trainer, scale);
  const RebuildPredictor predictor = MakeStatsPredictor(seed);
  UpdateProcessorConfig up_cfg;
  up_cfg.f_u = 256;
  up_cfg.seed = seed;
  UpdateProcessor updater(index.get(), &predictor, up_cfg);
  updater.Build(base);
  std::printf("built ZM on %s, n=%zu; profiling %.1f s at %d Hz\n",
              kind_name.c_str(), n, seconds, hz);

  prof::ProfilerOptions popts;
  popts.hz = hz;
  std::string error;
  const bool sampling = prof::CpuProfiler::Get().Start(popts, &error);
  if (!sampling) {
    std::printf("sampler unavailable: %s (span attribution still on)\n",
                error.c_str());
  }

  // The serve-style mixed workload, unthrottled, until the clock runs out.
  const auto probes = SamplePointQueries(base, 512, seed + 1);
  const auto windows = SampleWindowQueries(base, 64, 0.0001, seed + 2);
  const auto knn_probes = SampleKnnQueries(base, 64, seed + 3);
  BatchQueryOptions batch_opts;
  batch_opts.pool = &ThreadPool::Global();
  batch_opts.chunk = 256;
  std::vector<uint8_t> hit(probes.size(), 0);
  std::vector<Point> payload(probes.size());
  Timer uptime;
  size_t insert_pos = n;
  uint64_t rounds = 0;
  while (uptime.ElapsedSeconds() < seconds) {
    for (const Point& q : probes) index->PointQuery(q);
    index->PointQueryBatch(probes, hit, payload, batch_opts);
    for (const Rect& w : windows) index->WindowQuery(w);
    for (const Point& q : knn_probes) index->KnnQuery(q, 10);
    for (int i = 0; i < 64 && insert_pos < all.size(); ++i) {
      updater.Insert(all[insert_pos++]);
    }
    if (insert_pos >= all.size()) insert_pos = n;  // recycle the tail
    ++rounds;
  }

  if (sampling) {
    prof::CpuProfiler::Get().Stop();
    const prof::ProfilerStats stats = prof::CpuProfiler::Get().Stats();
    if (!prof::WriteCollapsedProfile(out, &error)) {
      std::fprintf(stderr, "profile write failed: %s\n", error.c_str());
      return 1;
    }
    std::printf(
        "profile: %llu samples from %llu threads (%llu dropped) -> %s\n"
        "         flamegraph.pl %s > flame.svg, or paste into speedscope\n",
        static_cast<unsigned long long>(stats.samples),
        static_cast<unsigned long long>(stats.threads_seen),
        static_cast<unsigned long long>(stats.dropped), out.c_str(),
        out.c_str());
  }

  // Span cost table: wall-clock always; IPC/LLC columns only when the
  // hardware tier opened (software tier shows task-clock instead).
  const std::vector<prof::SpanCost> costs =
      prof::SpanCostRegistry::Get().Snapshot();
  prof::SpanCostRegistry::Get().Disable();
  std::printf("\n%llu workload rounds; %zu span names\n",
              static_cast<unsigned long long>(rounds), costs.size());
  std::printf("%-32s %10s %10s %7s %9s %9s\n", "span", "calls", "wall ms",
              "ipc", "llc/call", "br/call");
  for (const prof::SpanCost& c : costs) {
    std::printf("%-32s %10llu %10.2f", c.name.c_str(),
                static_cast<unsigned long long>(c.count),
                static_cast<double>(c.wall_ns) / 1e6);
    if (c.totals.hardware) {
      std::printf(" %7.2f %9.1f %9.1f\n", c.Ipc(), c.LlcMissPerCall(),
                  c.BranchMissPerCall());
    } else {
      std::printf(" %7s %9s %9s\n", "-", "-", "-");
    }
  }
  return 0;
}

/// CLI spelling -> BaseIndexKind for the sharded engine (one ELSI stack per
/// shard, so only the four learned base kinds apply).
bool ShardKindFromCli(const std::string& name, BaseIndexKind* kind) {
  const std::map<std::string, BaseIndexKind> kinds = {
      {"zm", BaseIndexKind::kZM},
      {"ml", BaseIndexKind::kML},
      {"rsmi", BaseIndexKind::kRSMI},
      {"lisa", BaseIndexKind::kLISA}};
  const auto it = kinds.find(name);
  if (it == kinds.end()) return false;
  *kind = it->second;
  return true;
}

/// Sharded snapshots carry their own tiny header (magic + per-shard index
/// kind + trainer flavour) ahead of ShardedIndex::SaveState, because the
/// engine restores shards through the config it was constructed with — the
/// header lets `shard query` rebuild that config from the file alone.
constexpr const char kShardSnapshotMagic[] = "ELSI-SHARD-v1";

shard::ShardedIndexConfig ShardConfigForScale(BaseIndexKind kind, bool elsi,
                                              size_t shards, size_t n) {
  shard::ShardedIndexConfig cfg;
  cfg.partition.shards = shards;
  cfg.shard.kind = kind;
  cfg.shard.elsi = elsi;
  cfg.shard.scale.leaf_target =
      std::max<size_t>(2000, n / std::max<size_t>(shards, 1) / 16);
  cfg.pool = &ThreadPool::Global();
  return cfg;
}

int RunShardBuild(const std::map<std::string, std::string>& flags) {
  const std::string input = FlagOr(flags, "input", "");
  const std::string out = FlagOr(flags, "out", "");
  const size_t shards =
      std::strtoull(FlagOr(flags, "shards", "4").c_str(), nullptr, 10);
  const bool elsi = FlagOr(flags, "elsi", "1") == "1";
  const size_t threads =
      std::strtoull(FlagOr(flags, "threads", "0").c_str(), nullptr, 10);
  if (input.empty() || out.empty() || shards == 0) return Usage();
  BaseIndexKind kind;
  if (!ShardKindFromCli(FlagOr(flags, "index", "zm"), &kind)) {
    std::fprintf(stderr, "unknown index '%s'\n",
                 FlagOr(flags, "index", "zm").c_str());
    return 2;
  }
  if (threads > 0) ThreadPool::SetGlobalThreads(threads);

  Dataset data;
  if (!LoadPointsFile(input, &data)) {
    std::fprintf(stderr, "failed to load points from %s\n", input.c_str());
    return 1;
  }
  shard::ShardedIndexConfig cfg =
      ShardConfigForScale(kind, elsi, shards, data.size());
  const std::string mode = FlagOr(flags, "mode", "curve");
  if (mode == "grid") {
    cfg.partition.mode = shard::PartitionMode::kGrid;
  } else if (mode != "curve") {
    std::fprintf(stderr, "unknown mode '%s'\n", mode.c_str());
    return 2;
  }
  const std::string curve = FlagOr(flags, "curve", "z");
  if (curve == "hilbert") {
    cfg.partition.curve = shard::PartitionCurve::kHilbert;
  } else if (curve != "z") {
    std::fprintf(stderr, "unknown curve '%s'\n", curve.c_str());
    return 2;
  }

  shard::ShardedIndex index(cfg);
  Timer build_timer;
  index.Build(data);
  std::printf("built %s on %zu points in %.3f s (skew %.2f)\n",
              index.Name().c_str(), data.size(), build_timer.ElapsedSeconds(),
              index.SkewRatio());
  for (size_t i = 0; i < index.shard_count(); ++i) {
    std::printf("  shard %zu: %zu points\n", i, index.shard(i).PointCount());
  }

  persist::Writer w;
  w.Str(kShardSnapshotMagic);
  w.Str(BaseIndexKindName(kind));
  w.Bool(elsi);
  if (!index.SaveState(w)) {
    std::fprintf(stderr, "shard snapshot serialization failed\n");
    return 1;
  }
  std::ofstream file(out, std::ios::binary | std::ios::trunc);
  file.write(w.buffer().data(),
             static_cast<std::streamsize>(w.buffer().size()));
  if (!file.flush()) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("snapshot: %s (%zu bytes)\n", out.c_str(), w.buffer().size());
  return 0;
}

int RunShardQuery(const std::map<std::string, std::string>& flags) {
  const std::string path = FlagOr(flags, "snapshot", "");
  const size_t queries =
      std::strtoull(FlagOr(flags, "queries", "1000").c_str(), nullptr, 10);
  const double window_frac =
      std::atof(FlagOr(flags, "window-frac", "0.0001").c_str());
  const size_t k =
      std::strtoull(FlagOr(flags, "knn", "10").c_str(), nullptr, 10);
  const uint64_t seed =
      std::strtoull(FlagOr(flags, "seed", "42").c_str(), nullptr, 10);
  const size_t threads =
      std::strtoull(FlagOr(flags, "threads", "0").c_str(), nullptr, 10);
  const size_t batch =
      std::strtoull(FlagOr(flags, "batch", "256").c_str(), nullptr, 10);
  if (path.empty() || queries == 0 || batch == 0) return Usage();
  if (threads > 0) ThreadPool::SetGlobalThreads(threads);

  std::ifstream file(path, std::ios::binary);
  std::ostringstream buf;
  buf << file.rdbuf();
  const std::string bytes = buf.str();
  if (!file || bytes.empty()) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return 1;
  }
  persist::Reader r{std::string_view(bytes)};
  BaseIndexKind kind = BaseIndexKind::kZM;
  bool known_kind = false;
  if (r.Str() == kShardSnapshotMagic) {
    const std::string kind_name = r.Str();
    for (const BaseIndexKind candidate : kAllBaseIndexKinds) {
      if (BaseIndexKindName(candidate) == kind_name) {
        kind = candidate;
        known_kind = true;
      }
    }
  }
  const bool elsi = r.Bool();
  if (!r.ok() || !known_kind) {
    std::fprintf(stderr, "not a sharded snapshot (or unknown kind): %s\n",
                 path.c_str());
    return 1;
  }

  shard::ShardedIndex index(ShardConfigForScale(kind, elsi, 1, 0));
  Timer load_timer;
  if (!index.LoadState(r)) {
    std::fprintf(stderr, "shard snapshot load failed: %s\n", path.c_str());
    return 1;
  }
  std::printf("loaded %s: %s, %zu points in %zu shards (skew %.2f) in"
              " %.3f s\n",
              path.c_str(), index.Name().c_str(), index.size(),
              index.shard_count(), index.SkewRatio(),
              load_timer.ElapsedSeconds());
  if (index.size() == 0) return 0;

  const Dataset contents = index.CollectAll();
  const auto probes = SamplePointQueries(contents, queries, seed + 1);
  const auto windows =
      SampleWindowQueries(contents, std::max<size_t>(queries / 8, 1),
                          window_frac, seed + 2);
  const auto knn_probes =
      SampleKnnQueries(contents, std::max<size_t>(queries / 8, 1), seed + 3);
  BatchQueryOptions opts;
  opts.pool = &ThreadPool::Global();
  opts.chunk = batch;

  std::vector<uint8_t> hit(probes.size(), 0);
  std::vector<Point> payload(probes.size());
  Timer point_timer;
  index.PointQueryBatch(probes, hit, payload, opts);
  size_t found = 0;
  for (const uint8_t h : hit) found += h;
  std::printf("point queries:  %.2f us avg (%zu/%zu found)\n",
              point_timer.ElapsedMicros() / probes.size(), found,
              probes.size());
  if (found != probes.size()) {
    std::fprintf(stderr, "restored shards lost points\n");
    return 1;
  }

  std::vector<std::vector<Point>> window_out(windows.size());
  Timer window_timer;
  index.WindowQueryBatch(windows, window_out, opts);
  size_t window_results = 0;
  for (const auto& pts : window_out) window_results += pts.size();
  std::printf("window queries: %.2f us avg (%zu results)\n",
              window_timer.ElapsedMicros() / windows.size(), window_results);

  Timer knn_timer;
  size_t knn_results = 0, visited = 0;
  for (const Point& q : knn_probes) {
    shard::ShardedIndex::KnnStats stats;
    knn_results += index.KnnQueryCounted(q, k, &stats).size();
    visited += stats.shards_visited;
  }
  std::printf("knn queries:    %.2f us avg (k=%zu, %zu results, "
              "%.2f of %zu shards visited on average)\n",
              knn_timer.ElapsedMicros() / knn_probes.size(), k, knn_results,
              static_cast<double>(visited) /
                  static_cast<double>(knn_probes.size()),
              index.shard_count());

  Timer ops_timer;
  const size_t join_matches =
      shard::ContainmentJoin(index, windows, opts).size();
  const size_t distance_matches =
      shard::DistanceJoin(index, knn_probes, 0.02, opts).size();
  size_t aggregated = 0;
  for (const auto& agg : shard::AggregateByRegion(index, windows, opts)) {
    aggregated += agg.count;
  }
  std::printf("operators:      %.3f s (containment %zu, distance %zu, "
              "aggregate %zu)\n",
              ops_timer.ElapsedSeconds(), join_matches, distance_matches,
              aggregated);
  return 0;
}

int RunShardServe(const std::map<std::string, std::string>& flags) {
  const std::string kind_name = FlagOr(flags, "kind", "osm1");
  const size_t n =
      std::strtoull(FlagOr(flags, "n", "20000").c_str(), nullptr, 10);
  const size_t shards =
      std::strtoull(FlagOr(flags, "shards", "4").c_str(), nullptr, 10);
  const uint64_t seed =
      std::strtoull(FlagOr(flags, "seed", "42").c_str(), nullptr, 10);
  const double duration = std::atof(FlagOr(flags, "duration", "0").c_str());
  const size_t threads =
      std::strtoull(FlagOr(flags, "threads", "0").c_str(), nullptr, 10);
  if (threads > 0) ThreadPool::SetGlobalThreads(threads);

  const std::map<std::string, DatasetKind> kinds = {
      {"uniform", DatasetKind::kUniform}, {"skewed", DatasetKind::kSkewed},
      {"osm1", DatasetKind::kOsm1},       {"osm2", DatasetKind::kOsm2},
      {"tpch", DatasetKind::kTpch},       {"nyc", DatasetKind::kNyc}};
  const auto kit = kinds.find(kind_name);
  if (kit == kinds.end() || n == 0 || shards == 0) return Usage();

  // DirectTrainer per shard keeps startup snappy; the telemetry surfaces
  // are identical either way.
  const Dataset all = GenerateDataset(kit->second, n * 2, seed);
  const Dataset base(all.begin(), all.begin() + n);
  shard::ShardedIndex index(
      ShardConfigForScale(BaseIndexKind::kZM, /*elsi=*/false, shards, n));
  index.Build(base);

  obs::HttpExporter exporter;
  obs::HttpExporter::Options options;
  options.port = static_cast<uint16_t>(
      std::strtoul(FlagOr(flags, "port", "0").c_str(), nullptr, 10));
  if (!exporter.Start(options)) {
    std::fprintf(stderr,
                 "shard serve: cannot start the HTTP exporter (built with "
                 "-DELSI_OBS=OFF, or the port is taken)\n");
    return 1;
  }
  std::printf("serving on http://%s:%u\n", options.bind_address.c_str(),
              exporter.port());
  std::printf("  /healthz has the shard block; /varz the shard.* gauges\n");
  std::printf("built %s on %s, n=%zu (skew %.2f); workload running%s\n",
              index.Name().c_str(), kind_name.c_str(), n, index.SkewRatio(),
              duration > 0 ? "" : " (Ctrl-C to stop)");
  std::fflush(stdout);

  const auto probes = SamplePointQueries(base, 512, seed + 1);
  const auto windows = SampleWindowQueries(base, 64, 0.0001, seed + 2);
  const auto knn_probes = SampleKnnQueries(base, 64, seed + 3);
  Timer uptime;
  size_t insert_pos = n;
  uint64_t round = 0;
  while (duration <= 0 || uptime.ElapsedSeconds() < duration) {
    for (const Point& q : probes) index.PointQuery(q);
    for (const Rect& w : windows) index.WindowQuery(w);
    for (const Point& q : knn_probes) index.KnnQuery(q, 10);
    for (int i = 0; i < 32 && insert_pos < all.size(); ++i) {
      index.Insert(all[insert_pos++]);
    }
    if (insert_pos >= all.size()) insert_pos = n;  // recycle the tail
    index.UpdateShardMetrics();  // keep /healthz populations fresh
    ++round;
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
  exporter.Stop();
  std::printf("served %.1f s, %llu workload rounds\n",
              uptime.ElapsedSeconds(),
              static_cast<unsigned long long>(round));
  return 0;
}

int RunShard(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string sub = argv[2];
  const auto flags = ParseFlags(argc, argv, 3);
  if (sub == "build") return RunShardBuild(flags);
  if (sub == "query") return RunShardQuery(flags);
  if (sub == "serve") return RunShardServe(flags);
  return Usage();
}

int RunTop(const std::map<std::string, std::string>& flags) {
  const std::string host = FlagOr(flags, "host", "127.0.0.1");
  const std::string endpoint = FlagOr(flags, "endpoint", "/varz");
  const uint16_t port = static_cast<uint16_t>(
      std::strtoul(FlagOr(flags, "port", "0").c_str(), nullptr, 10));
  if (port == 0) return Usage();
  int status = 0;
  std::string body;
  if (!obs::HttpGet(host, port, endpoint, &status, &body)) {
    std::fprintf(stderr, "top: cannot reach http://%s:%u%s\n", host.c_str(),
                 port, endpoint.c_str());
    return 1;
  }
  std::fputs(body.c_str(), stdout);
  return status == 200 ? 0 : 1;
}

/// Fetches /debug/slow from a running server and renders the captured
/// tail-latency trace trees: one line per trace plus its per-phase and
/// per-shard time breakdown. --raw 1 dumps the JSON document instead.
int RunSlow(const std::map<std::string, std::string>& flags) {
  const std::string host = FlagOr(flags, "host", "127.0.0.1");
  const uint16_t port = static_cast<uint16_t>(
      std::strtoul(FlagOr(flags, "port", "0").c_str(), nullptr, 10));
  if (port == 0) return Usage();
  int status = 0;
  std::string body;
  if (!obs::HttpGet(host, port, "/debug/slow", &status, &body)) {
    std::fprintf(stderr, "slow: cannot reach http://%s:%u/debug/slow\n",
                 host.c_str(), port);
    return 1;
  }
  if (status != 200) {
    std::fputs(body.c_str(), stderr);
    return 1;
  }
  if (FlagOr(flags, "raw", "0") == "1") {
    std::fputs(body.c_str(), stdout);
    return 0;
  }
  benchdiff::JsonValue doc;
  std::string error;
  if (!benchdiff::ParseJson(body, &doc, &error)) {
    std::fprintf(stderr, "slow: bad /debug/slow JSON: %s\n", error.c_str());
    return 1;
  }
  const auto number = [](const benchdiff::JsonValue* v) {
    return v != nullptr ? v->number : 0.0;
  };
  std::printf("threshold %.1f us, captured %.0f, dropped %.0f\n",
              number(doc.Find("threshold_us")), number(doc.Find("captured")),
              number(doc.Find("dropped")));
  const benchdiff::JsonValue* traces = doc.Find("traces");
  if (traces == nullptr || traces->array.empty()) {
    std::printf("no slow queries captured\n");
    return 0;
  }
  for (const benchdiff::JsonValue& trace : traces->array) {
    const benchdiff::JsonValue* root = trace.Find("root");
    std::printf("trace %.0f  %-20s dur %9.1f us  spans %3.0f  orphans %.0f\n",
                number(trace.Find("trace_id")),
                root != nullptr ? root->string.c_str() : "?",
                number(trace.Find("dur_us")), number(trace.Find("span_count")),
                number(trace.Find("orphans")));
    const benchdiff::JsonValue* phases = trace.Find("phases");
    if (phases != nullptr) {
      for (const benchdiff::JsonValue& phase : phases->array) {
        const benchdiff::JsonValue* name = phase.Find("name");
        std::printf("  phase %-20s x%-4.0f total %9.1f us  self %9.1f us\n",
                    name != nullptr ? name->string.c_str() : "?",
                    number(phase.Find("count")), number(phase.Find("total_us")),
                    number(phase.Find("self_us")));
      }
    }
    const benchdiff::JsonValue* shards = trace.Find("shards");
    if (shards != nullptr) {
      for (const benchdiff::JsonValue& shard : shards->array) {
        const benchdiff::JsonValue* name = shard.Find("name");
        std::printf("  shard %-20s x%-4.0f total %9.1f us\n",
                    name != nullptr ? name->string.c_str() : "?",
                    number(shard.Find("count")),
                    number(shard.Find("total_us")));
      }
    }
  }
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  const auto flags = ParseFlags(argc, argv, 2);
  if (command == "generate") return RunGenerate(flags);
  if (command == "bench") return RunBench(flags);
  if (command == "stats") return RunStats(flags);
  if (command == "save") return RunSave(flags);
  if (command == "load") return RunLoad(flags);
  if (command == "recover") return RunRecover(flags);
  if (command == "serve") return RunServe(flags);
  if (command == "top") return RunTop(flags);
  if (command == "slow") return RunSlow(flags);
  if (command == "profile") return RunProfile(flags);
  if (command == "shard") return RunShard(argc, argv);
  return Usage();
}

}  // namespace
}  // namespace elsi

int main(int argc, char** argv) { return elsi::Main(argc, argv); }
