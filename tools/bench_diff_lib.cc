#include "bench_diff_lib.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <set>
#include <sstream>

namespace elsi {
namespace benchdiff {

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

// --- parser ---------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out, std::string* error) {
    SkipWs();
    if (!Value(out)) {
      if (error != nullptr) {
        char buf[96];
        std::snprintf(buf, sizeof(buf), "JSON parse error near offset %zu",
                      pos_);
        *error = buf;
      }
      return false;
    }
    SkipWs();
    if (pos_ != text_.size()) {
      if (error != nullptr) *error = "trailing characters after document";
      return false;
    }
    return true;
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Literal(const char* word, size_t len) {
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  bool Value(JsonValue* out) {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return Object(out);
      case '[':
        return Array(out);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return String(&out->string);
      case 't':
        out->kind = JsonValue::Kind::kBool;
        out->boolean = true;
        return Literal("true", 4);
      case 'f':
        out->kind = JsonValue::Kind::kBool;
        out->boolean = false;
        return Literal("false", 5);
      case 'n':
        out->kind = JsonValue::Kind::kNull;
        return Literal("null", 4);
      default:
        return Number(out);
    }
  }

  bool Object(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      std::string key;
      if (!String(&key)) return false;
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') return false;
      ++pos_;
      SkipWs();
      JsonValue value;
      if (!Value(&value)) return false;
      out->object.emplace_back(std::move(key), std::move(value));
      SkipWs();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool Array(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      JsonValue value;
      if (!Value(&value)) return false;
      out->array.push_back(std::move(value));
      SkipWs();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool String(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"':
          case '\\':
          case '/':
            *out += esc;
            break;
          case 'n':
            *out += '\n';
            break;
          case 't':
            *out += '\t';
            break;
          case 'r':
            *out += '\r';
            break;
          case 'b':
            *out += '\b';
            break;
          case 'f':
            *out += '\f';
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return false;
            const unsigned code = static_cast<unsigned>(
                std::strtoul(text_.substr(pos_, 4).c_str(), nullptr, 16));
            pos_ += 4;
            // Bench files are ASCII; anything else degrades to '?'.
            *out += code < 0x80 ? static_cast<char>(code) : '?';
            break;
          }
          default:
            return false;
        }
      } else {
        *out += c;
      }
    }
    return false;
  }

  bool Number(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    char* end = nullptr;
    const std::string token = text_.substr(start, pos_ - start);
    out->number = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return false;
    out->kind = JsonValue::Kind::kNumber;
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

bool ParseJson(const std::string& text, JsonValue* out, std::string* error) {
  return Parser(text).Parse(out, error);
}

// --- flatten --------------------------------------------------------------

namespace {

/// Stable element key for array entries: a "name"-like string field when
/// present (google-benchmark's benchmarks[] and our queries[] both have
/// one), the element index otherwise.
std::string ElementKey(const JsonValue& element, size_t index) {
  if (element.kind == JsonValue::Kind::kObject) {
    std::string key;
    for (const char* field : {"name", "query", "kind"}) {
      const JsonValue* v = element.Find(field);
      if (v != nullptr && v->kind == JsonValue::Kind::kString) {
        if (!key.empty()) key += "/";
        key += v->string;
      }
    }
    // Disambiguators that are numbers (batch size, thread count) join the
    // key so sweep rows with the same query name stay distinct.
    if (!key.empty()) {
      for (const char* field : {"batch", "threads"}) {
        const JsonValue* v = element.Find(field);
        if (v != nullptr && v->kind == JsonValue::Kind::kNumber) {
          char buf[32];
          std::snprintf(buf, sizeof(buf), "/%s=%g", field, v->number);
          key += buf;
        }
      }
      return key;
    }
  }
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%zu", index);
  return buf;
}

}  // namespace

void Flatten(const JsonValue& value, const std::string& prefix,
             std::map<std::string, JsonValue>* out) {
  switch (value.kind) {
    case JsonValue::Kind::kObject:
      for (const auto& [key, child] : value.object) {
        Flatten(child, prefix.empty() ? key : prefix + "." + key, out);
      }
      break;
    case JsonValue::Kind::kArray:
      for (size_t i = 0; i < value.array.size(); ++i) {
        Flatten(value.array[i],
                prefix + "[" + ElementKey(value.array[i], i) + "]", out);
      }
      break;
    default:
      (*out)[prefix] = value;
  }
}

// --- classify -------------------------------------------------------------

namespace {

std::string LastComponent(const std::string& path) {
  const size_t dot = path.find_last_of('.');
  return dot == std::string::npos ? path : path.substr(dot + 1);
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

MetricClass ClassifyPath(const std::string& path) {
  // google-benchmark's context block (host info, CPU scaling, date) and
  // run bookkeeping are machine noise, never gated.
  if (path.rfind("context.", 0) == 0) return MetricClass::kIgnored;
  // Trace/slow-query observability columns (span totals, capture counts,
  // thresholds) are run- and machine-dependent side data a bench may carry:
  // reported, never gated — and timing-suffix rules must not claim them.
  if (path.find("trace.") != std::string::npos ||
      path.find("slow_queries") != std::string::npos) {
    return MetricClass::kContextInfo;
  }
  const std::string leaf = LastComponent(path);
  if (leaf == "date" || leaf == "executable" || leaf == "iterations" ||
      leaf == "repetitions" || leaf == "repetition_index" ||
      leaf == "family_index" || leaf == "per_family_instance_index" ||
      leaf == "threads" || leaf == "run_name" || leaf == "run_type" ||
      leaf == "aggregate_name" || leaf == "time_unit" || leaf == "name" ||
      leaf == "query" || leaf == "kind" || leaf == "label") {
    return MetricClass::kIgnored;
  }
  if (leaf == "checksum" || leaf == "obs_enabled" || leaf == "found" ||
      leaf == "hits" || leaf == "result_count") {
    return MetricClass::kExact;
  }
  if (leaf == "n" || leaf == "dataset_n" || leaf == "batch" ||
      leaf == "seed" || leaf == "k") {
    return MetricClass::kContext;
  }
  if (leaf == "ipc" || leaf == "llc_miss_per_op" ||
      leaf == "branch_miss_per_op" || leaf == "shards_visited_mean") {
    return MetricClass::kContextInfo;
  }
  if (leaf.find("speedup") != std::string::npos ||
      leaf.find("recall") != std::string::npos ||
      leaf.find("throughput") != std::string::npos ||
      leaf.find("items_per_second") != std::string::npos) {
    return MetricClass::kHigherBetter;
  }
  if (EndsWith(leaf, "_us") || EndsWith(leaf, "_ns") ||
      EndsWith(leaf, "_ms") || EndsWith(leaf, "_s") ||
      EndsWith(leaf, "_seconds") || leaf == "real_time" ||
      leaf == "cpu_time" || leaf.find("time") != std::string::npos ||
      leaf.find("latency") != std::string::npos) {
    return MetricClass::kTimeLowerBetter;
  }
  return MetricClass::kIgnored;
}

// --- diff -----------------------------------------------------------------

namespace {

double ToleranceFor(const std::string& path, const DiffOptions& options) {
  double tolerance = options.tolerance;
  size_t best = 0;
  for (const auto& [substr, tol] : options.overrides) {
    if (substr.size() >= best && path.find(substr) != std::string::npos) {
      best = substr.size();
      tolerance = tol;
    }
  }
  return tolerance;
}

std::string Num(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

}  // namespace

DiffReport Diff(const JsonValue& baseline, const JsonValue& fresh,
                const DiffOptions& options) {
  std::map<std::string, JsonValue> base_flat, fresh_flat;
  Flatten(baseline, "", &base_flat);
  Flatten(fresh, "", &fresh_flat);

  DiffReport report;
  auto add = [&report](DiffEntry::Status status, const std::string& path,
                       double base, double now, const std::string& message) {
    DiffEntry e;
    e.status = status;
    e.path = path;
    e.baseline = base;
    e.fresh = now;
    e.message = message;
    if (status == DiffEntry::Status::kFail) ++report.failures;
    if (status == DiffEntry::Status::kWarn) ++report.warnings;
    report.entries.push_back(std::move(e));
  };

  for (const auto& [path, base_value] : base_flat) {
    const MetricClass cls = ClassifyPath(path);
    if (cls == MetricClass::kIgnored) continue;
    const auto it = fresh_flat.find(path);
    if (it == fresh_flat.end()) {
      // Counter columns may be absent from older runs; everything else
      // missing means the fresh run silently dropped a gated metric.
      if (cls != MetricClass::kContextInfo) {
        add(DiffEntry::Status::kFail, path, base_value.number, 0.0,
            "metric missing from fresh run");
      }
      continue;
    }
    const JsonValue& fresh_value = it->second;
    ++report.compared;

    if (base_value.kind != JsonValue::Kind::kNumber ||
        fresh_value.kind != JsonValue::Kind::kNumber) {
      // Non-numeric leaves (strings, bools) only matter for exact/context.
      const bool same =
          base_value.kind == fresh_value.kind &&
          base_value.string == fresh_value.string &&
          base_value.boolean == fresh_value.boolean;
      if (!same && cls != MetricClass::kTimeLowerBetter &&
          cls != MetricClass::kHigherBetter) {
        add(DiffEntry::Status::kFail, path, 0.0, 0.0, "value changed");
      }
      continue;
    }

    const double base = base_value.number;
    const double now = fresh_value.number;
    switch (cls) {
      case MetricClass::kExact:
      case MetricClass::kContext:
        if (base != now) {
          add(DiffEntry::Status::kFail, path, base, now,
              cls == MetricClass::kExact
                  ? "exact metric changed (correctness signal)"
                  : "run context differs; diff is not comparable");
        }
        break;
      case MetricClass::kTimeLowerBetter: {
        const double tolerance = ToleranceFor(path, options);
        if (base > 0 && now > base * (1.0 + tolerance)) {
          const double ratio = now / base;
          add(options.advisory_time ? DiffEntry::Status::kWarn
                                    : DiffEntry::Status::kFail,
              path, base, now,
              "slower by " + Num((ratio - 1.0) * 100.0) + "% (tolerance " +
                  Num(tolerance * 100.0) + "%)");
        }
        break;
      }
      case MetricClass::kHigherBetter: {
        const double tolerance = ToleranceFor(path, options);
        if (base > 0 && now < base * (1.0 - tolerance)) {
          const double ratio = now / base;
          add(DiffEntry::Status::kFail, path, base, now,
              "dropped to " + Num(ratio * 100.0) + "% of baseline "
              "(tolerance " + Num(tolerance * 100.0) + "%)");
        }
        break;
      }
      case MetricClass::kContextInfo:  // reported via compared count only
      case MetricClass::kIgnored:
        break;
    }
  }
  return report;
}

DiffReport DiffStrings(const std::string& baseline_text,
                       const std::string& fresh_text,
                       const DiffOptions& options) {
  JsonValue baseline, fresh;
  std::string error;
  DiffReport report;
  if (!ParseJson(baseline_text, &baseline, &error)) {
    DiffEntry e;
    e.status = DiffEntry::Status::kFail;
    e.path = "<baseline>";
    e.message = error;
    report.entries.push_back(e);
    ++report.failures;
    return report;
  }
  if (!ParseJson(fresh_text, &fresh, &error)) {
    DiffEntry e;
    e.status = DiffEntry::Status::kFail;
    e.path = "<fresh>";
    e.message = error;
    report.entries.push_back(e);
    ++report.failures;
    return report;
  }
  return Diff(baseline, fresh, options);
}

std::string DiffReport::ToText() const {
  std::ostringstream out;
  for (const DiffEntry& e : entries) {
    const char* tag = e.status == DiffEntry::Status::kFail   ? "FAIL"
                      : e.status == DiffEntry::Status::kWarn ? "WARN"
                                                             : "ok";
    out << tag << "  " << e.path;
    if (e.baseline != 0.0 || e.fresh != 0.0) {
      out << "  baseline=" << Num(e.baseline) << " fresh=" << Num(e.fresh);
    }
    if (!e.message.empty()) out << "  (" << e.message << ")";
    out << "\n";
  }
  out << "compared " << compared << " metrics: " << failures << " failure"
      << (failures == 1 ? "" : "s") << ", " << warnings << " warning"
      << (warnings == 1 ? "" : "s") << "\n";
  return out.str();
}

// --- directory pairing ----------------------------------------------------

bool CollectDirPairs(const std::string& baseline_dir,
                     const std::string& fresh_dir,
                     std::vector<std::pair<std::string, std::string>>* pairs,
                     std::vector<std::string>* new_fresh) {
  pairs->clear();
  new_fresh->clear();
  std::error_code ec;
  std::set<std::string> baseline_names;
  for (const auto& entry :
       std::filesystem::directory_iterator(baseline_dir, ec)) {
    if (entry.path().extension() != ".json") continue;
    baseline_names.insert(entry.path().filename().string());
    pairs->emplace_back(
        entry.path().string(),
        (std::filesystem::path(fresh_dir) / entry.path().filename())
            .string());
  }
  if (ec) return false;
  std::sort(pairs->begin(), pairs->end());
  // An unreadable fresh dir just means every baseline's fresh file is
  // missing; the per-pair diff reports those, so no error here.
  std::error_code fresh_ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(fresh_dir, fresh_ec)) {
    if (entry.path().extension() != ".json") continue;
    if (baseline_names.count(entry.path().filename().string()) == 0) {
      new_fresh->push_back(entry.path().string());
    }
  }
  std::sort(new_fresh->begin(), new_fresh->end());
  return true;
}

}  // namespace benchdiff
}  // namespace elsi
