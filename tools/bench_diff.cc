// bench_diff — the CI bench-regression gate.
//
// Compares fresh BENCH_*.json outputs against checked-in baselines
// (bench/baselines/) and exits non-zero when a gated metric regresses past
// its tolerance. See bench_diff_lib.h for the classification rules.
//
// usage:
//   bench_diff [options] <baseline.json> <fresh.json> [<base2> <fresh2> ...]
//   bench_diff [options] --baseline-dir DIR --fresh-dir DIR
//
// options:
//   --tolerance F        relative tolerance for rate/time metrics (0.20)
//   --metric SUB=F       per-metric override, substring-matched (repeatable)
//   --advisory-time      demote time regressions to warnings (cross-machine)
//   --report FILE        also write the text report to FILE (CI artifact)
//
// With --baseline-dir/--fresh-dir, every *.json in the baseline dir is
// paired with the same-named file in the fresh dir; a missing fresh file is
// a failure (the bench stopped producing it). A fresh file with no paired
// baseline is reported as NEW and does not fail the gate — a freshly added
// bench can land in one PR with its baseline checked in by the same or a
// follow-up commit without breaking CI in between.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_diff_lib.h"

namespace elsi {
namespace benchdiff {
namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  bench_diff [options] <baseline.json> <fresh.json> [pairs...]\n"
      "  bench_diff [options] --baseline-dir DIR --fresh-dir DIR\n"
      "options:\n"
      "  --tolerance F     relative tolerance (default 0.20)\n"
      "  --metric SUB=F    substring-matched override (repeatable)\n"
      "  --advisory-time   time regressions warn instead of fail\n"
      "  --report FILE     write the text report to FILE too\n");
  return 2;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

int Main(int argc, char** argv) {
  DiffOptions options;
  std::string baseline_dir, fresh_dir, report_path;
  std::vector<std::string> positional;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--tolerance") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.tolerance = std::atof(v);
    } else if (arg == "--metric") {
      const char* v = next();
      const char* eq = v != nullptr ? std::strchr(v, '=') : nullptr;
      if (eq == nullptr) return Usage();
      options.overrides[std::string(v, eq - v)] = std::atof(eq + 1);
    } else if (arg == "--advisory-time") {
      options.advisory_time = true;
    } else if (arg == "--baseline-dir") {
      const char* v = next();
      if (v == nullptr) return Usage();
      baseline_dir = v;
    } else if (arg == "--fresh-dir") {
      const char* v = next();
      if (v == nullptr) return Usage();
      fresh_dir = v;
    } else if (arg == "--report") {
      const char* v = next();
      if (v == nullptr) return Usage();
      report_path = v;
    } else if (arg.rfind("--", 0) == 0) {
      return Usage();
    } else {
      positional.push_back(arg);
    }
  }

  std::vector<std::pair<std::string, std::string>> pairs;
  std::vector<std::string> new_fresh;  // Fresh files with no baseline yet.
  if (!baseline_dir.empty() || !fresh_dir.empty()) {
    if (baseline_dir.empty() || fresh_dir.empty() || !positional.empty()) {
      return Usage();
    }
    // A fresh BENCH_*.json without a checked-in baseline is informational,
    // never a failure: it is reported as NEW so the author remembers to
    // commit one (see CollectDirPairs).
    if (!CollectDirPairs(baseline_dir, fresh_dir, &pairs, &new_fresh)) {
      std::fprintf(stderr, "bench_diff: cannot read %s\n",
                   baseline_dir.c_str());
      return 2;
    }
  } else {
    if (positional.empty() || positional.size() % 2 != 0) return Usage();
    for (size_t i = 0; i < positional.size(); i += 2) {
      pairs.emplace_back(positional[i], positional[i + 1]);
    }
  }
  if (pairs.empty()) {
    std::fprintf(stderr, "bench_diff: no baseline files found\n");
    return 2;
  }

  std::ostringstream report;
  int failures = 0, warnings = 0;
  for (const auto& [baseline_path, fresh_path] : pairs) {
    report << "== " << baseline_path << " vs " << fresh_path << " ==\n";
    std::string baseline_text, fresh_text;
    if (!ReadFile(baseline_path, &baseline_text)) {
      report << "FAIL  cannot read baseline " << baseline_path << "\n";
      ++failures;
      continue;
    }
    if (!ReadFile(fresh_path, &fresh_text)) {
      report << "FAIL  fresh result missing: " << fresh_path
             << " (the bench stopped producing it)\n";
      ++failures;
      continue;
    }
    const DiffReport diff = DiffStrings(baseline_text, fresh_text, options);
    report << diff.ToText();
    failures += diff.failures;
    warnings += diff.warnings;
  }
  for (const std::string& path : new_fresh) {
    report << "NEW   " << path
           << " (no baseline yet; check one in to gate it)\n";
  }
  report << (failures > 0 ? "RESULT: REGRESSION\n" : "RESULT: OK\n");

  const std::string text = report.str();
  std::fputs(text.c_str(), stdout);
  if (!report_path.empty()) {
    std::ofstream out(report_path, std::ios::binary | std::ios::trunc);
    out << text;
    if (!out) {
      std::fprintf(stderr, "bench_diff: cannot write %s\n",
                   report_path.c_str());
      return 2;
    }
  }
  (void)warnings;
  return failures > 0 ? 1 : 0;
}

}  // namespace
}  // namespace benchdiff
}  // namespace elsi

int main(int argc, char** argv) { return elsi::benchdiff::Main(argc, argv); }
