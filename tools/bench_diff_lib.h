#ifndef ELSI_TOOLS_BENCH_DIFF_LIB_H_
#define ELSI_TOOLS_BENCH_DIFF_LIB_H_

/// bench_diff: compares a fresh BENCH_*.json against a checked-in baseline
/// (bench/baselines/) with per-metric tolerances — the CI regression gate.
///
/// The comparison is schema-agnostic: both documents are flattened to
/// path -> leaf maps (arrays of objects are keyed by their "name"/"query"
/// field when present, by index otherwise), then each shared numeric path
/// is classified by its name:
///
///   time metrics   (us/ms/ns/seconds suffixes)  lower is better
///   quality        (speedup, recall, ratio)     higher is better
///   exact          (checksum, obs_enabled)      must match bit-for-bit
///   context        (n, threads, dataset_n)      mismatch invalidates diff
///   context info   (ipc, llc_miss_per_op)       reported, never gated
///   ignored        (date, iterations, context.*) noise, skipped
///
/// Context-info metrics are hardware-counter rates (zero on perf-denied
/// hosts, machine-dependent everywhere else) and the trace./slow_queries
/// observability columns (span totals, capture counts, adaptive
/// thresholds): they never gate, and a baseline written before the column
/// existed still diffs cleanly.
///
/// A metric regresses when it moves past its tolerance in the "worse"
/// direction (improvements never fail). Timings on foreign machines are
/// incomparable in absolute terms; --advisory-time demotes time
/// regressions to warnings while keeping exact/context/quality enforced.

#include <map>
#include <string>
#include <vector>

namespace elsi {
namespace benchdiff {

// --- minimal JSON ---------------------------------------------------------

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;  // insertion order

  const JsonValue* Find(const std::string& key) const;
};

/// Recursive-descent parse of a complete JSON document. Returns false and
/// fills `error` (with offset context) on malformed input.
bool ParseJson(const std::string& text, JsonValue* out, std::string* error);

// --- flatten + classify ---------------------------------------------------

/// Flattens to dotted paths: {"a": {"b": 1}} -> "a.b". Array elements use
/// "[<name>]" when the element object has a "name"/"query"/"kind" field,
/// else "[<index>]". Only scalar leaves are emitted.
void Flatten(const JsonValue& value, const std::string& prefix,
             std::map<std::string, JsonValue>* out);

enum class MetricClass {
  kTimeLowerBetter,
  kHigherBetter,
  kExact,
  kContext,
  kContextInfo,  // hardware-counter rates: shown in the report, never gated
  kIgnored,
};

/// Classification by the path's final component (see file comment).
MetricClass ClassifyPath(const std::string& path);

// --- diff -----------------------------------------------------------------

struct DiffOptions {
  double tolerance = 0.20;  // relative move allowed in the worse direction
  /// Substring-matched per-metric overrides, e.g. {"speedup", 0.6}. The
  /// longest matching substring wins.
  std::map<std::string, double> overrides;
  /// Demote time regressions to warnings (cross-machine diffs).
  bool advisory_time = false;
};

struct DiffEntry {
  enum class Status { kOk, kWarn, kFail };
  Status status = Status::kOk;
  std::string path;
  double baseline = 0.0;
  double fresh = 0.0;
  std::string message;
};

struct DiffReport {
  std::vector<DiffEntry> entries;
  int compared = 0;
  int failures = 0;
  int warnings = 0;

  bool ok() const { return failures == 0; }
  /// Human-readable report (also the CI artifact).
  std::string ToText() const;
};

DiffReport Diff(const JsonValue& baseline, const JsonValue& fresh,
                const DiffOptions& options);

/// Convenience: parse both documents and diff. Parse errors surface as a
/// single kFail entry.
DiffReport DiffStrings(const std::string& baseline_text,
                       const std::string& fresh_text,
                       const DiffOptions& options);

// --- directory pairing ----------------------------------------------------

/// Pairs every *.json in `baseline_dir` with the same-named file in
/// `fresh_dir` (sorted; a missing fresh file fails later, when the pair is
/// diffed), and collects fresh *.json files with no checked-in baseline
/// into `new_fresh` (sorted). NEW files never gate — a freshly added bench
/// can land in one PR and check its baseline in with the same or a
/// follow-up commit without breaking CI in between. Returns false when the
/// baseline directory cannot be read.
bool CollectDirPairs(const std::string& baseline_dir,
                     const std::string& fresh_dir,
                     std::vector<std::pair<std::string, std::string>>* pairs,
                     std::vector<std::string>* new_fresh);

}  // namespace benchdiff
}  // namespace elsi

#endif  // ELSI_TOOLS_BENCH_DIFF_LIB_H_
